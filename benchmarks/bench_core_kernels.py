"""Micro-benchmarks of the library's hot kernels.

Not a paper figure: these time the primitives every experiment is built
on (h-ASPL evaluation, one annealing proposal through the incremental
and full evaluators, routing-table construction, one fluid alltoall,
graph bisection) so performance regressions in the substrate are caught
by the benchmark suite itself.

Besides the pytest-benchmark cases, the module is runnable directly to
track the perf trajectory in ``BENCH_pr2.json`` at the repo root::

    python benchmarks/bench_core_kernels.py --quick --check BENCH_pr2.json
    python benchmarks/bench_core_kernels.py --full --out BENCH_pr2.json

``--quick`` times the gated kernels with ``time.perf_counter`` (seconds,
best of several repeats) and ``--check`` fails (exit 1) when a gated
kernel regresses more than 1.5x against the committed baseline.  ``--full``
additionally measures the end-to-end ``solve 1024 15`` speedup of the
incremental evaluator over the full-APSP evaluator (default schedule).
``--kernels`` instead sweeps the pluggable BFS backends
(:mod:`repro.core.kernels`) — per-backend ``bench_h_aspl_{1024,4096}``
plus the n=4096 annealing step both ways — for the ``BENCH_pr7.json``
baseline::

    python benchmarks/bench_core_kernels.py --kernels --check BENCH_pr7.json
    python benchmarks/bench_core_kernels.py --kernels --out BENCH_pr7.json

``--telemetry-out PATH`` records a ``repro.obs`` JSONL trace of the
restart-fan-out kernel alongside the timing JSON (the gated kernels
themselves always run with telemetry disabled — that *is* the gated
configuration).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time

import pytest

try:
    from benchmarks._common import BENCH_SCHEMA, bench_meta
except ImportError:  # standalone: `python benchmarks/bench_core_kernels.py`
    from _common import BENCH_SCHEMA, bench_meta

from repro.core.annealing import AnnealingSchedule, anneal
from repro.core.construct import random_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.incremental import IncrementalEvaluator
from repro.core.kernels import BACKEND_ENV, available_backends
from repro.core.metrics import h_aspl, h_aspl_and_diameter
from repro.core.operations import SwapMove
from repro.core.solver import solve_orp
from repro.obs import JsonlSink, TelemetryRegistry
from repro.partition import partition_host_switch
from repro.routing import RoutingTables
from repro.simulation.mpi import run_mpi_program

# Kernels gated by CI against the committed BENCH_pr2.json baseline.
GATED = ("bench_h_aspl_1024", "bench_anneal_step_1024_incremental")
# Kernel-backend sweep entries gated against BENCH_pr7.json (--kernels).
# Only the millisecond-scale kernels are gated: the sub-millisecond
# n=1024 entries are bimodal across process invocations (allocator /
# CPU-state luck) by more than the tolerance and stay informational.
GATED_PR7 = ("bench_h_aspl_4096_bitset", "bench_anneal_step_4096_incremental")
REGRESSION_TOLERANCE = 1.5

#: The ``--kernels`` graph scales: the paper-scale instance plus the
#: large instance the bit-packed kernels were built for.
KERNEL_SCALES = ((1024, 195, 15), (4096, 734, 16))


def _legal_swap(graph: HostSwitchGraph) -> SwapMove:
    """First legal swap in a deterministic edge scan (for repeatable timing)."""
    edges = [tuple(sorted(e)) for e in graph.switch_edges()]
    for i, (a, b) in enumerate(edges):
        for c, d in edges[i + 1 :]:
            move = SwapMove(a, b, c, d)
            if move.is_legal(graph):
                return move
    raise RuntimeError("graph admits no legal swap")


def _swap_round_trip(move: SwapMove) -> tuple[SwapMove, SwapMove]:
    """``(move, inverse)`` so repeated committed proposals leave the graph
    unchanged: ``SwapMove(a, d, c, b)`` undoes ``SwapMove(a, b, c, d)``."""
    return move, SwapMove(move.a, move.d, move.c, move.b)


@pytest.fixture(scope="module")
def graph_1024():
    return random_host_switch_graph(1024, 195, 15, seed=0)


@pytest.fixture(scope="module")
def graph_256():
    return random_host_switch_graph(256, 55, 12, seed=0)


def bench_h_aspl_1024(graph_1024, benchmark):
    """One SA proposal evaluation at paper scale (n=1024, m=195)."""
    value = benchmark(h_aspl, graph_1024)
    assert value < float("inf")


def bench_h_aspl_and_diameter_256(graph_256, benchmark):
    value = benchmark(h_aspl_and_diameter, graph_256)
    assert value[1] >= value[0]


def bench_anneal_step_1024_incremental(graph_1024, benchmark):
    """One committed annealing proposal (and its undo) via delta repair."""
    work = graph_1024.copy()
    evaluator = IncrementalEvaluator(work)
    move, inverse = _swap_round_trip(_legal_swap(work))

    def step():
        move.apply(work)
        value = evaluator.propose(move)
        evaluator.commit()
        inverse.apply(work)
        evaluator.propose(inverse)
        evaluator.commit()
        return value

    assert benchmark(step) < float("inf")


def bench_anneal_step_1024_full(graph_1024, benchmark):
    """The same committed proposal scored by full APSP recomputation."""
    work = graph_1024.copy()
    move, inverse = _swap_round_trip(_legal_swap(work))

    def step():
        move.apply(work)
        value = h_aspl(work)
        inverse.apply(work)
        h_aspl(work)
        return value

    assert benchmark(step) < float("inf")


def bench_solver_restarts(benchmark):
    """A short multi-restart solve (the restart fan-out's serial baseline)."""

    def kernel():
        return solve_orp(
            128, 8, schedule=AnnealingSchedule(num_steps=300), restarts=2, seed=0
        ).h_aspl

    value = benchmark.pedantic(kernel, rounds=3, iterations=1)
    assert value < float("inf")


def bench_routing_tables_1024(graph_1024, benchmark):
    tables = benchmark.pedantic(RoutingTables, args=(graph_1024,), rounds=3, iterations=1)
    assert tables.distance(0, 1) >= 0


def bench_bisection_1024(graph_1024, benchmark):
    def kernel():
        return partition_host_switch(graph_1024, 2, seed=0, trials=1)[1]

    cut = benchmark.pedantic(kernel, rounds=3, iterations=1)
    assert cut > 0


def bench_fluid_alltoall_16(graph_256, benchmark):
    """A 16-rank alltoall through the fluid model (the simulator hot path)."""

    def program(mpi):
        yield from mpi.alltoall(65536)

    def kernel():
        return run_mpi_program(graph_256, 16, program).time_s

    t = benchmark.pedantic(kernel, rounds=3, iterations=1)
    assert t > 0


# --------------------------------------------------------------------- #
# Standalone runner: machine-readable results + CI regression gate
# --------------------------------------------------------------------- #


def _best_of(fn, repeat: int = 5) -> float:
    """Best wall-clock seconds over ``repeat`` calls (min filters noise)."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _quick_suite(
    telemetry: TelemetryRegistry | None = None,
) -> dict[str, dict[str, float]]:
    """Time the gated kernels plus the restart fan-out (seconds).

    The gated kernels always run untraced (the disabled-telemetry path is
    the configuration the CI gate protects); ``telemetry`` only instruments
    the final restart fan-out so a bench run leaves a solver trace behind.
    """
    graph = random_host_switch_graph(1024, 195, 15, seed=0)
    results: dict[str, dict[str, float]] = {}

    results["bench_h_aspl_1024"] = {"seconds": _best_of(lambda: h_aspl(graph))}

    work = graph.copy()
    evaluator = IncrementalEvaluator(work)
    move, inverse = _swap_round_trip(_legal_swap(work))

    def incremental_step():
        move.apply(work)
        evaluator.propose(move)
        evaluator.commit()
        inverse.apply(work)
        evaluator.propose(inverse)
        evaluator.commit()

    # Each step proposes twice (there and back); report one proposal.
    results["bench_anneal_step_1024_incremental"] = {
        "seconds": _best_of(incremental_step) / 2.0
    }

    full_work = graph.copy()

    def full_step():
        move.apply(full_work)
        h_aspl(full_work)
        inverse.apply(full_work)
        h_aspl(full_work)

    results["bench_anneal_step_1024_full"] = {"seconds": _best_of(full_step) / 2.0}

    def restarts():
        solve_orp(
            128, 8, schedule=AnnealingSchedule(num_steps=300), restarts=2,
            seed=0, telemetry=telemetry,
        )

    results["bench_solver_restarts"] = {"seconds": _best_of(restarts, repeat=3)}
    return results


@contextlib.contextmanager
def _forced_backend(name: str):
    """Temporarily pin ``REPRO_KERNEL_BACKEND`` (resolution is per call)."""
    old = os.environ.get(BACKEND_ENV)
    os.environ[BACKEND_ENV] = name
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = old


def _kernel_suite() -> dict[str, dict[str, float]]:
    """Per-backend h-ASPL and n=4096 annealing-step timings (seconds).

    Every available backend times the full h-ASPL evaluation at both
    scales (``bench_h_aspl_{n}_{backend}``); the annealing step at
    n=4096 runs under the default backend resolution — exactly the
    configuration a plain ``repro solve 4096 16`` would use.
    """
    results: dict[str, dict[str, float]] = {}
    graphs: dict[int, HostSwitchGraph] = {}
    for n, m, r in KERNEL_SCALES:
        graph = random_host_switch_graph(n, m, r, seed=0)
        graphs[n] = graph
        for backend in available_backends():
            # The python oracle at n=4096 runs a dense-matmul APSP per
            # call; keep its repeat count low, it is informational only.
            # The sub-millisecond kernels need many repeats for a stable
            # best-of under shared-runner noise.
            if backend == "python" and n == 4096:
                repeat = 1
            elif n == 1024:
                repeat = 25
            else:
                repeat = 7
            with _forced_backend(backend):
                seconds = _best_of(lambda g=graph: h_aspl(g), repeat=repeat)
            results[f"bench_h_aspl_{n}_{backend}"] = {"seconds": seconds}

    work = graphs[4096].copy()
    evaluator = IncrementalEvaluator(work)
    move, inverse = _swap_round_trip(_legal_swap(work))

    def incremental_step():
        move.apply(work)
        evaluator.propose(move)
        evaluator.commit()
        inverse.apply(work)
        evaluator.propose(inverse)
        evaluator.commit()

    # Each step proposes twice (there and back); report one proposal.
    results["bench_anneal_step_4096_incremental"] = {
        "seconds": _best_of(incremental_step, repeat=40) / 2.0
    }

    full_work = graphs[4096].copy()

    def full_step():
        move.apply(full_work)
        h_aspl(full_work)
        inverse.apply(full_work)
        h_aspl(full_work)

    results["bench_anneal_step_4096_full"] = {
        "seconds": _best_of(full_step, repeat=3) / 2.0
    }
    return results


def _anneal_seconds(start: HostSwitchGraph, evaluator: str, seed: int) -> tuple[float, float]:
    t0 = time.perf_counter()
    result = anneal(start, schedule=AnnealingSchedule(), seed=seed, evaluator=evaluator)
    return time.perf_counter() - t0, result.h_aspl


def _solve_speedup(n: int, r: int, m: int) -> dict[str, float]:
    """End-to-end ``solve n r`` (default schedule) speedup, both evaluators.

    Times the search stage of the solver pipeline on the same starting
    graph and seed; the two runs are bit-identical, so the ratio is pure
    evaluator cost.
    """
    start = random_host_switch_graph(n, m, r, seed=0)
    incremental_s, value_inc = _anneal_seconds(start, "incremental", seed=1)
    full_s, value_full = _anneal_seconds(start, "full", seed=1)
    assert value_inc == value_full  # repro-lint: disable=REP004 -- bit-identity check
    return {
        "incremental_seconds": incremental_s,
        "full_seconds": full_s,
        "speedup": full_s / incremental_s,
        "h_aspl": value_inc,
    }


def _check_regressions(
    results: dict, baseline_path: str, gated: tuple[str, ...] = GATED
) -> int:
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = []
    for name in gated:
        base = baseline.get("benchmarks", {}).get(name, {}).get("seconds")
        now = results.get(name, {}).get("seconds")
        if base is None or now is None:
            failures.append(f"{name}: missing from baseline or current run")
            continue
        ratio = now / base
        status = "FAIL" if ratio > REGRESSION_TOLERANCE else "ok"
        print(f"{name}: {now * 1e3:.3f} ms vs baseline {base * 1e3:.3f} ms "
              f"({ratio:.2f}x) {status}")
        if ratio > REGRESSION_TOLERANCE:
            failures.append(f"{name}: {ratio:.2f}x > {REGRESSION_TOLERANCE}x tolerance")
    for failure in failures:
        print(f"regression gate: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--quick", action="store_true",
                      help="gated kernels only (CI mode)")
    mode.add_argument("--full", action="store_true",
                      help="quick suite + end-to-end solve-1024-15 speedup")
    mode.add_argument("--kernels", action="store_true",
                      help="BFS-backend sweep incl. n=4096 (BENCH_pr7.json)")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument("--check", default=None,
                        help="baseline JSON to gate against (exit 1 on regression)")
    parser.add_argument("--telemetry-out", default=None,
                        help="record a repro.obs JSONL trace of the restart "
                             "fan-out kernel to this path")
    parser.add_argument("--timestamp", default=None,
                        help="ISO timestamp recorded in the payload's meta "
                             "block (provenance for repro telemetry regress)")
    args = parser.parse_args(argv)

    if args.kernels:
        results = _kernel_suite()
        payload: dict = {
            "schema": BENCH_SCHEMA,
            "meta": bench_meta(args.timestamp),
            "benchmarks": results,
        }
        print(json.dumps(payload, indent=2))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")
        if args.check:
            return _check_regressions(results, args.check, gated=GATED_PR7)
        return 0

    telemetry = None
    if args.telemetry_out:
        telemetry = TelemetryRegistry("bench")
        telemetry.add_sink(JsonlSink(args.telemetry_out))
    try:
        results = _quick_suite(telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    payload = {
        "schema": BENCH_SCHEMA,
        "meta": bench_meta(args.timestamp),
        "benchmarks": results,
    }
    if args.full:
        payload["solve_1024_15"] = _solve_speedup(1024, 15, m=195)
        payload["solve_256_12"] = _solve_speedup(256, 12, m=55)

    print(json.dumps(payload, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if args.check:
        return _check_regressions(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
