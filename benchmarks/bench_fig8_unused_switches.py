"""Fig. 8 — host distribution with unused switches (m = n >> m_opt).

The paper fixes (n, m, r) = (1024, 1024, 24) — far more switches than
m_opt — and observes that the optimised *non-regular* graph simply leaves
most switches hostless (over 70 %): extra switches become pure transit (or
dead weight), which is why more switches do not mean lower latency.

Scale: small = (n, m, r) = (128, 128, 12); paper = (1024, 1024, 24).
"""

from __future__ import annotations

import pytest

from benchmarks._common import SA_STEPS, SCALE, emit
from repro.analysis.distributions import host_distribution, unused_switch_fraction
from repro.analysis.report import format_table
from repro.core.annealing import AnnealingSchedule, anneal
from repro.core.construct import random_host_switch_graph
from repro.core.moore import optimal_switch_count

N, M, R = (128, 128, 12) if SCALE == "small" else (1024, 1024, 24)
SEED = 8


@pytest.fixture(scope="module")
def result():
    start = random_host_switch_graph(N, M, R, seed=SEED)
    return anneal(
        start,
        operation="two-neighbor-swing",
        schedule=AnnealingSchedule(num_steps=SA_STEPS),
        seed=SEED,
    )


def bench_fig8_unused_switch_fraction(result, benchmark):
    hist = host_distribution(result.graph)
    unused = unused_switch_fraction(result.graph)
    m_opt, _ = optimal_switch_count(N, R)
    table = format_table(
        ["hosts/switch", "#switches"],
        sorted(hist.items()),
        title=(
            f"Fig.8: host distribution with unused switches  "
            f"(n={N}, m={M}, r={R}; m_opt would be {m_opt}; "
            f"unused fraction={unused:.1%}, h-ASPL={result.h_aspl:.3f})"
        ),
    )
    emit("fig8_unused_switches", table)

    # --- shape assertions -------------------------------------------------
    # A large share of switches carries no hosts (paper: >70 % at 1024;
    # the scaled instance is looser but must still be substantial).
    assert unused > 0.3
    # The graph stays fully connected despite the hostless switches.
    assert result.graph.is_switch_graph_connected()

    frac = benchmark(unused_switch_fraction, result.graph)
    assert frac == unused
