"""Setup shim for offline editable installs (`pip install -e . --no-use-pep517`).

Environments without the `wheel` package cannot build PEP-517 editable
wheels; this file enables the legacy setuptools develop path.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
