"""End-to-end fault injection: schedules driven through the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construct import (
    random_host_switch_graph,
    random_regular_host_switch_graph,
)
from repro.faults import FaultInjector, FaultSchedule, link_down, switch_down
from repro.obs import TelemetryRegistry
from repro.simulation.engine import Event, Kernel
from repro.simulation.fluid import FluidScheduler
from repro.simulation.network import build_network
from repro.simulation.traffic import run_traffic


@pytest.fixture
def regular_graph():
    # 8 switches, radix 6, 24 hosts; well connected (12 switch links).
    return random_regular_host_switch_graph(24, 8, 6, seed=0)


@pytest.fixture
def tree_graph():
    # Spanning-tree fabric: every switch link is a bridge.
    return random_host_switch_graph(10, 5, 8, seed=2, fill_edges=False)


class TestCancelFlows:
    def test_affected_flow_cancelled_with_remaining_bytes(self):
        kernel = Kernel()
        sched = FluidScheduler(kernel, np.array([100.0, 100.0]))
        doomed, safe = Event(), Event()
        sched.start_flow([0], 100.0, doomed)
        sched.start_flow([1], 100.0, safe)
        cancelled = []
        kernel.call_at(0.5, lambda: cancelled.extend(sched.cancel_flows([0])))
        kernel.run()
        assert len(cancelled) == 1
        assert cancelled[0][0] is doomed
        assert not doomed.fired  # cancelled flows never fire their event
        assert safe.fired

    def test_remaining_bytes_reflect_partial_drain(self):
        kernel = Kernel()
        sched = FluidScheduler(kernel, np.array([100.0]))
        ev = Event()
        sched.start_flow([0], 100.0, ev)
        out = []
        kernel.call_at(0.25, lambda: out.extend(sched.cancel_flows([0])))
        kernel.run()
        assert len(out) == 1
        event, remaining = out[0]
        assert event is ev
        # 100 bytes at 100 B/s for 0.25 s leaves 75 bytes in flight.
        assert remaining == pytest.approx(75.0)
        assert not ev.fired
        assert sched.num_active == 0

    def test_unrelated_links_untouched(self):
        kernel = Kernel()
        sched = FluidScheduler(kernel, np.array([100.0, 100.0]))
        ev = Event()
        sched.start_flow([1], 50.0, ev)
        out = []
        kernel.call_at(0.1, lambda: out.extend(sched.cancel_flows([0])))
        kernel.run()
        assert out == []
        assert ev.fired


class TestInjector:
    def test_double_install_rejected(self, regular_graph):
        kernel = Kernel()
        net = build_network(
            regular_graph, kernel, faults=FaultSchedule(), seed=0
        )
        injector = FaultInjector(net, FaultSchedule([switch_down(1.0, 0)]))
        injector.install()
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install()

    def test_invalid_target_rejected_before_run(self, regular_graph):
        bad = FaultSchedule([switch_down(0.0, 99)])
        with pytest.raises(ValueError, match="switch 99"):
            run_traffic(regular_graph, "uniform", messages_per_host=2, seed=0,
                        faults=bad)


class TestFaultedTraffic:
    def test_empty_schedule_bit_identical_to_no_faults(self, regular_graph):
        plain = run_traffic(
            regular_graph, "uniform", messages_per_host=5, seed=1
        )
        armed = run_traffic(
            regular_graph, "uniform", messages_per_host=5, seed=1,
            faults=FaultSchedule(),
        )
        assert armed.latencies_s == plain.latencies_s
        assert armed.delivered_bytes == plain.delivered_bytes
        assert armed.messages_dropped == 0

    def test_partitioning_fault_drops_messages(self, tree_graph):
        bridge = sorted(tree_graph.switch_edges())[0]
        tel = TelemetryRegistry()
        result = run_traffic(
            tree_graph, "uniform", messages_per_host=10, seed=3,
            faults=FaultSchedule([link_down(0.0, *bridge)]), telemetry=tel,
        )
        assert result.messages_dropped > 0
        assert len(result.latencies_s) + result.messages_dropped == 100
        assert tel.counter("faults.injected").value == 1
        assert tel.counter("faults.dropped").value == result.messages_dropped

    def test_flaps_reroute_without_loss(self, regular_graph):
        tel = TelemetryRegistry()
        flaps = FaultSchedule.random_link_flaps(
            regular_graph, 3, seed=4, start=1e-5, period=2e-5, down_time=1e-5
        )
        result = run_traffic(
            regular_graph, "uniform", messages_per_host=10, seed=5,
            faults=flaps, telemetry=tel,
        )
        # A well-connected fabric reroutes around transient flaps.
        assert result.messages_dropped == 0
        assert len(result.latencies_s) == 240
        assert tel.counter("faults.injected").value == 3
        assert tel.counter("faults.repaired").value == 3
        assert tel.counter("faults.reroutes").value > 0

    def test_faulted_run_deterministic(self, regular_graph):
        def go():
            return run_traffic(
                regular_graph, "uniform", messages_per_host=10, seed=5,
                faults=FaultSchedule.random_link_flaps(
                    regular_graph, 3, seed=4, start=1e-5, period=2e-5,
                    down_time=1e-5,
                ),
            )

        a, b = go(), go()
        assert a.latencies_s == b.latencies_s
        assert a.messages_dropped == b.messages_dropped

    def test_switch_failure_counts_injected(self, regular_graph):
        tel = TelemetryRegistry()
        sched = FaultSchedule.random_switch_failures(regular_graph, 2, seed=9)
        result = run_traffic(
            regular_graph, "uniform", messages_per_host=10, seed=7,
            faults=sched, telemetry=tel,
        )
        assert tel.counter("faults.injected").value == 2
        assert result.messages_dropped > 0  # hosts on dead switches
