"""Tests for fault events and schedules (`repro.faults.schedule`)."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultEvent,
    FaultSchedule,
    link_down,
    link_up,
    switch_down,
    switch_up,
)


class TestFaultEvent:
    def test_link_endpoints_normalised_sorted(self):
        event = link_down(0.5, 3, 1)
        assert event.link == (1, 3)
        assert event.target == (1, 3)

    def test_switch_event_target(self):
        event = switch_down(0.0, 2)
        assert event.switch == 2
        assert event.target == 2

    def test_replace_inverts_action(self):
        event = link_down(1.0, 0, 1)
        up = event.replace(action="up")
        assert up.action == "up"
        assert up.link == event.link
        assert up.time == event.time

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(time=0.0, kind="cable", action="down", link=(0, 1)), "kind"),
            (dict(time=0.0, kind="link", action="explode", link=(0, 1)), "action"),
            (dict(time=-1.0, kind="link", action="down", link=(0, 1)), "time"),
            (dict(time=0.0, kind="link", action="down"), "link event"),
            (dict(time=0.0, kind="link", action="down", link=(2, 2)), "differ"),
            (dict(time=0.0, kind="switch", action="down"), "switch event"),
            (
                dict(time=0.0, kind="switch", action="down", switch=1, link=(0, 1)),
                "switch event",
            ),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultEvent(**kwargs)

    def test_dict_round_trip(self):
        for event in (link_down(0.25, 4, 2), switch_up(1.5, 7)):
            assert FaultEvent.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_unknown_keys(self):
        doc = link_down(0.0, 0, 1).to_dict()
        doc["severity"] = "bad"
        with pytest.raises(ValueError, match="unknown fault-event keys"):
            FaultEvent.from_dict(doc)


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        sched = FaultSchedule([link_down(2.0, 0, 1), switch_down(1.0, 3)])
        assert [e.time for e in sched] == [1.0, 2.0]
        assert len(sched) == 2
        assert sched.num_down_events == 2

    def test_down_up_pair_is_consistent(self):
        sched = FaultSchedule([link_down(0.0, 0, 1), link_up(1.0, 0, 1)])
        assert sched.num_down_events == 1

    def test_double_down_rejected(self):
        with pytest.raises(ValueError, match="downed twice"):
            FaultSchedule([link_down(0.0, 0, 1), link_down(1.0, 1, 0)])
        with pytest.raises(ValueError, match="downed twice"):
            FaultSchedule([switch_down(0.0, 2), switch_down(1.0, 2)])

    def test_repair_without_failure_rejected(self):
        with pytest.raises(ValueError, match="never down"):
            FaultSchedule([link_up(1.0, 0, 1)])
        with pytest.raises(ValueError, match="never down"):
            FaultSchedule([switch_down(0.0, 1), switch_up(1.0, 2)])

    def test_dicts_round_trip(self):
        sched = FaultSchedule(
            [link_down(0.0, 0, 1), switch_down(0.5, 2), link_up(1.0, 0, 1)]
        )
        assert FaultSchedule.from_dicts(sched.to_dicts()) == sched

    def test_validate_against(self, fig1_graph):
        FaultSchedule([switch_down(0.0, 3)]).validate_against(fig1_graph)
        with pytest.raises(ValueError, match="switch 9"):
            FaultSchedule([switch_down(0.0, 9)]).validate_against(fig1_graph)
        # fig1 is the 4-ring: (0, 2) is not an edge.
        with pytest.raises(ValueError, match="not a switch edge"):
            FaultSchedule([link_down(0.0, 0, 2)]).validate_against(fig1_graph)


class TestRandomBuilders:
    def test_link_failures_deterministic(self, fig1_graph):
        a = FaultSchedule.random_link_failures(fig1_graph, 3, seed=7)
        b = FaultSchedule.random_link_failures(fig1_graph, 3, seed=7)
        assert a == b
        assert a.num_down_events == 3
        a.validate_against(fig1_graph)

    def test_different_seed_different_schedule(self, fig1_graph):
        a = FaultSchedule.random_link_failures(fig1_graph, 3, seed=0)
        b = FaultSchedule.random_link_failures(fig1_graph, 3, seed=1)
        # 3 of 4 ring edges: seeds 0/1 happen to pick different subsets.
        assert a != b

    def test_switch_failures_targets_distinct(self, fig1_graph):
        sched = FaultSchedule.random_switch_failures(
            fig1_graph, 4, seed=3, spacing=1.0
        )
        targets = [e.switch for e in sched]
        assert sorted(targets) == [0, 1, 2, 3]
        assert [e.time for e in sched] == [0.0, 1.0, 2.0, 3.0]

    def test_link_flaps_pair_down_with_up(self, fig1_graph):
        sched = FaultSchedule.random_link_flaps(
            fig1_graph, 2, seed=5, period=1e-3, down_time=1e-4
        )
        assert len(sched) == 4
        assert sched.num_down_events == 2
        downs = [e for e in sched if e.action == "down"]
        ups = [e for e in sched if e.action == "up"]
        assert {e.link for e in downs} == {e.link for e in ups}
        for down in downs:
            up = next(e for e in ups if e.link == down.link)
            assert up.time == pytest.approx(down.time + 1e-4)

    def test_flaps_reject_nonpositive_down_time(self, fig1_graph):
        with pytest.raises(ValueError, match="down_time"):
            FaultSchedule.random_link_flaps(fig1_graph, 1, seed=0, down_time=0.0)

    def test_count_out_of_range_rejected(self, fig1_graph):
        with pytest.raises(ValueError, match="count"):
            FaultSchedule.random_link_failures(fig1_graph, 0, seed=0)
        with pytest.raises(ValueError, match="count"):
            FaultSchedule.random_switch_failures(fig1_graph, 99, seed=0)
