"""TopologyService: hits, fallbacks, single-flight, batching, rate limits.

The environment ships no async test plugin, so every test is a sync
function driving its coroutine through ``asyncio.run`` — which also
exercises the service's own claim that it owns no loop.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.campaign.store import CampaignStore
from repro.compose.blocks import resolve_block
from repro.obs import MemorySink, TelemetryRegistry
from repro.serve import ServeBusy, ServeConfig, TopologyService


@pytest.fixture(scope="module")
def seeded_root(tmp_path_factory):
    """A store root with one solved block at (16, 4)."""
    root = tmp_path_factory.mktemp("stores")
    store = CampaignStore(root, "seed")
    store.save_spec.__doc__  # touch to keep mypy quiet about unused fixture
    block = resolve_block(16, 4, store=store, steps=60)
    return root, block


def _config(root, **overrides):
    defaults = dict(
        store_root=root,
        campaigns=("seed",),
        refine_steps=50,
        refine_restarts=1,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _events(tel, name):
    return [e for e in tel.snapshot()["events"] if e["name"] == name]


class TestAnswers:
    def test_index_hit(self, seeded_root):
        root, block = seeded_root
        service = TopologyService(_config(root))

        async def run():
            answer = await service.query(16, 4)
            await service.aclose()
            return answer

        answer = asyncio.run(run())
        assert answer.source == "index"
        assert answer.digest == block.digest
        assert answer.h_aspl == block.h_aspl
        assert answer.campaign == "seed"
        assert answer.refine is None
        assert service.counts["hits"] == 1

    def test_bounds_fallback_on_miss(self, seeded_root):
        root, _ = seeded_root
        service = TopologyService(_config(root, refine=False))

        async def run():
            answer = await service.query(12, 4)
            await service.aclose()
            return answer

        answer = asyncio.run(run())
        assert answer.source == "bounds"
        assert answer.h_aspl_lower_bound is not None
        assert answer.refine == "disabled"
        assert service.counts["misses"] == 1

    def test_compose_predicted_from_stored_block(self, seeded_root):
        # (32, 6) with block_hosts=16 plans 2 copies of a (16, 5) block.
        root, _ = seeded_root
        store = CampaignStore(root, "seed")
        block = resolve_block(16, 5, store=store, steps=60)
        service = TopologyService(_config(root, block_hosts=16, refine=False))

        async def run():
            answer = await service.query(32, 6)
            await service.aclose()
            return answer

        answer = asyncio.run(run())
        assert answer.source == "compose-predicted"
        assert answer.digest == block.digest
        assert answer.h_aspl is not None
        assert answer.detail["copies"] == 2
        assert answer.detail["block_radix"] == 5

    def test_warm_cache_revalidates_on_index_growth(self, seeded_root, tmp_path):
        root, _ = seeded_root
        # Use a private root so the shared fixture store stays untouched.
        own = tmp_path / "stores"
        store = CampaignStore(own, "seed")
        resolve_block(16, 4, store=store, steps=60)
        service = TopologyService(_config(own, refine=False))

        async def run():
            first = await service.query(20, 4)
            resolve_block(20, 4, store=store, steps=60, seed=3)
            second = await service.query(20, 4)
            await service.aclose()
            return first, second

        first, second = asyncio.run(run())
        assert first.source == "bounds"
        assert second.source == "index"


class TestRefinement:
    def test_miss_starts_single_flight_refinement(self, seeded_root, tmp_path):
        root, _ = seeded_root
        tel = TelemetryRegistry("t")
        service = TopologyService(
            _config(root, refine_campaign=f"refine-{tmp_path.name}"),
            telemetry=tel,
        )

        async def run():
            first = await service.query(12, 4)
            second = await service.query(12, 4)  # refine still in flight
            await service.aclose(drain=True)
            return first, second

        first, second = asyncio.run(run())
        assert first.refine == "started"
        assert second.refine == "in-flight"
        assert service.counts["refinements"] == 1
        assert len(_events(tel, "serve.refine.start")) == 1
        assert len(_events(tel, "serve.refine.done")) == 1

        # ... and the refined key is an index hit for a fresh service.
        fresh = TopologyService(
            _config(root, refine_campaign=f"refine-{tmp_path.name}")
        )

        async def requery():
            answer = await fresh.query(12, 4)
            await fresh.aclose()
            return answer

        assert asyncio.run(requery()).source == "index"

    def test_failed_refinement_emits_event_and_allows_retry(
        self, seeded_root, monkeypatch, tmp_path
    ):
        root, _ = seeded_root
        tel = TelemetryRegistry("t")
        service = TopologyService(
            _config(root, refine_campaign=f"refine-{tmp_path.name}"), telemetry=tel
        )

        def boom(n, r):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(service, "_refine_solve", boom)

        async def run():
            first = await service.query(12, 4)
            await asyncio.gather(
                *[t for t in service._refining.values()], return_exceptions=True
            )
            second = await service.query(12, 4)
            await service.aclose()
            return first, second

        first, second = asyncio.run(run())
        assert first.refine == "started"
        assert second.refine == "started"  # done (failed) task is replaced
        # Both attempts fail under the patched solver (the second during
        # the aclose drain), and each failure is reported.
        assert len(_events(tel, "serve.refine.failed")) == 2
        assert service.counts["refinements"] == 2


class TestConcurrencyControl:
    def test_same_key_queries_batch_onto_one_answer(self, seeded_root):
        root, block = seeded_root
        tel = TelemetryRegistry("t")
        service = TopologyService(_config(root), telemetry=tel)
        calls = 0
        real_answer = service._answer

        async def slow_answer(n, r):
            nonlocal calls
            calls += 1
            await asyncio.sleep(0.05)
            return await real_answer(n, r)

        service._answer = slow_answer

        async def run():
            answers = await asyncio.gather(
                service.query(16, 4), service.query(16, 4), service.query(16, 4)
            )
            await service.aclose()
            return answers

        answers = asyncio.run(run())
        assert calls == 1
        assert {a.digest for a in answers} == {block.digest}
        assert service.counts["batched"] == 2
        assert len(_events(tel, "serve.batched")) == 2

    def test_overload_rejects_fast(self, seeded_root):
        root, _ = seeded_root
        tel = TelemetryRegistry("t")
        service = TopologyService(
            _config(root, refine=False, max_concurrency=1, max_pending=1),
            telemetry=tel,
        )
        async def run():
            gate = asyncio.Event()
            real_answer = service._answer

            async def gated_answer(n, r):
                await gate.wait()
                return await real_answer(n, r)

            service._answer = gated_answer
            first = asyncio.create_task(service.query(16, 4))
            await asyncio.sleep(0.01)  # first holds the slot
            second = asyncio.create_task(service.query(20, 4))
            await asyncio.sleep(0.01)  # second waits (1 >= max_pending)
            with pytest.raises(ServeBusy):
                await service.query(24, 4)
            gate.set()
            await asyncio.gather(first, second)
            await service.aclose()

        asyncio.run(run())
        assert service.counts["rejected"] == 1
        assert len(_events(tel, "serve.rejected")) == 1

    def test_drain_waits_for_inflight_refinement(self, seeded_root, tmp_path):
        root, _ = seeded_root
        service = TopologyService(
            _config(root, refine_campaign=f"refine-{tmp_path.name}")
        )

        async def run():
            await service.query(12, 4)  # miss: refinement starts
            assert service.stats()["refining"] == 1
            await service.aclose(drain=True)
            assert service.stats()["refining"] == 0
            with pytest.raises(ServeBusy, match="draining"):
                await service.query(16, 4)

        asyncio.run(run())
        refined = CampaignStore(root, f"refine-{tmp_path.name}").best_for(12, 4)
        assert refined is not None  # the refinement ran to completion

    def test_telemetry_uses_closed_registry_names(self, seeded_root, tmp_path):
        from repro.obs.names import INSTRUMENTS

        root, _ = seeded_root
        tel = TelemetryRegistry("t")
        sink = MemorySink()
        tel.add_sink(sink)
        service = TopologyService(
            _config(root, refine_campaign=f"refine-{tmp_path.name}"), telemetry=tel
        )

        async def run():
            await service.query(16, 4)
            await service.query(12, 4)
            await service.aclose(drain=True)

        asyncio.run(run())
        served = {
            e["name"] for e in tel.snapshot()["events"]
            if e["name"].startswith("serve.")
        }
        assert served  # the service actually reported
        assert served <= INSTRUMENTS
