"""TCP server + blocking client end-to-end, and the wire protocol."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.campaign.store import CampaignStore
from repro.compose.blocks import resolve_block
from repro.serve import ServeConfig, TopologyServer
from repro.serve import client
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    QueryAnswer,
    decode_request,
    encode_line,
)


class TestProtocol:
    def test_request_round_trip(self):
        line = encode_line({"op": "query", "n": 16, "r": 4})
        assert decode_request(line) == {"op": "query", "n": 16, "r": 4}

    @pytest.mark.parametrize(
        "line",
        [
            b"not json\n",
            b"[1, 2]\n",
            b'{"op": "explode"}\n',
            b'{"op": "query", "n": 16}\n',
            b'{"op": "query", "n": true, "r": 4}\n',
            b'{"op": "query", "n": 0, "r": 4}\n',
        ],
    )
    def test_malformed_requests_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_request(b"x" * (MAX_LINE_BYTES + 1))

    def test_answer_dict_omits_nones_and_infinities(self):
        answer = QueryAnswer(
            n=12,
            r=4,
            source="bounds",
            h_aspl_lower_bound=3.27,
            lacin_h_aspl_baseline=float("inf"),
        )
        record = answer.to_dict()
        assert "h_aspl" not in record
        assert "lacin_h_aspl_baseline" not in record
        json.dumps(record, allow_nan=False)  # strictly valid JSON


@pytest.fixture(scope="module")
def seeded_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("stores")
    store = CampaignStore(root, "seed")
    resolve_block(16, 4, store=store, steps=60)
    resolve_block(20, 4, store=store, steps=60)
    return root


def _server(root, **overrides):
    defaults = dict(
        store_root=root,
        campaigns=("seed",),
        refine_steps=50,
    )
    defaults.update(overrides)
    return TopologyServer(ServeConfig(**defaults), port=0)


async def _call(fn, *args, **kwargs):
    return await asyncio.to_thread(fn, *args, **kwargs)


class TestServerEndToEnd:
    def test_query_ping_stats_shutdown(self, seeded_root, tmp_path):
        server = _server(seeded_root, refine=False)

        async def run():
            await server.start()
            port = server.bound_port
            serve_task = asyncio.create_task(
                server.serve_until_shutdown(port_file=tmp_path / "port")
            )
            await asyncio.sleep(0)  # let the port file land
            assert int((tmp_path / "port").read_text()) == port

            warm = await _call(client.query, "127.0.0.1", port, 16, 4)
            assert warm["source"] == "index" and warm["campaign"] == "seed"
            cold = await _call(client.query, "127.0.0.1", port, 12, 4)
            assert cold["source"] == "bounds" and cold["refine"] == "disabled"
            assert await _call(client.ping, "127.0.0.1", port)
            stats = await _call(client.stats, "127.0.0.1", port)
            assert stats["hits"] == 1 and stats["misses"] == 1

            await _call(client.shutdown, "127.0.0.1", port)
            await asyncio.wait_for(serve_task, timeout=10)

        asyncio.run(run())

    def test_malformed_line_answers_error_and_keeps_connection(self, seeded_root):
        server = _server(seeded_root, refine=False)

        async def run():
            await server.start()
            port = server.bound_port
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"not json\n")
            await writer.drain()
            error = json.loads(await reader.readline())
            assert error["ok"] is False and "bad request" in error["error"]
            # Same connection still serves real requests afterwards.
            writer.write(encode_line({"op": "ping"}))
            await writer.drain()
            pong = json.loads(await reader.readline())
            assert pong["ok"] is True
            writer.close()
            await writer.wait_closed()
            await server.aclose()

        asyncio.run(run())

    def test_concurrent_cold_queries_single_flight_refine(
        self, seeded_root, tmp_path
    ):
        server = _server(
            seeded_root, refine_campaign=f"refine-{tmp_path.name}"
        )

        async def run():
            await server.start()
            port = server.bound_port
            answers = await asyncio.gather(
                *[_call(client.query, "127.0.0.1", port, 12, 4) for _ in range(4)]
            )
            stats = await _call(client.stats, "127.0.0.1", port)
            await server.aclose()  # drains the refinement
            return answers, stats

        answers, stats = asyncio.run(run())
        assert all(a["source"] == "bounds" for a in answers)
        assert stats["refinements"] == 1  # single-flight across connections
        # Only the leader of a batched miss stamps the refine disposition;
        # waiters share the pre-refine answer object.
        started = [a.get("refine") for a in answers].count("started")
        assert started == 1
        refined = CampaignStore(seeded_root, f"refine-{tmp_path.name}").best_for(
            12, 4
        )
        assert refined is not None

    def test_corrupt_point_still_serves_other_keys(self, seeded_root, tmp_path):
        # Copy the seeded store, corrupt one point, and serve from the copy.
        import shutil

        root = tmp_path / "stores"
        shutil.copytree(seeded_root, root)
        store = CampaignStore(root, "seed")
        victim = store.best_for(20, 4)
        assert victim is not None
        (store.point_dir(victim.digest) / "point.json").write_text("{ torn")
        (store.point_dir(victim.digest) / "result.json").write_text("{ torn")
        server = _server(root, refine=False)

        async def run():
            await server.start()
            port = server.bound_port
            healthy = await _call(client.query, "127.0.0.1", port, 16, 4)
            poisoned = await _call(client.query, "127.0.0.1", port, 20, 4)
            await server.aclose()
            return healthy, poisoned

        healthy, poisoned = asyncio.run(run())
        assert healthy["source"] == "index"  # unaffected key still serves
        # The corrupted key answers too — no exception, just a fallback.
        assert poisoned["source"] in ("bounds", "compose-predicted")

    def test_busy_rejection_reaches_client(self, seeded_root):
        server = _server(
            seeded_root, refine=False, max_concurrency=1, max_pending=1
        )

        async def run():
            await server.start()
            port = server.bound_port
            gate = asyncio.Event()
            service = server.service
            real_answer = service._answer

            async def gated_answer(n, r):
                await gate.wait()
                return await real_answer(n, r)

            service._answer = gated_answer
            # First query holds the only slot; second waits (fills
            # max_pending); third must be rejected with busy=True.
            first = asyncio.create_task(_call(client.query, "127.0.0.1", port, 16, 4))
            while not service.stats()["in_flight"]:
                await asyncio.sleep(0.01)
            second = asyncio.create_task(_call(client.query, "127.0.0.1", port, 20, 4))
            while not service.stats()["waiting"]:
                await asyncio.sleep(0.01)
            with pytest.raises(client.ServerError) as excinfo:
                await _call(client.query, "127.0.0.1", port, 24, 4)
            assert excinfo.value.busy
            gate.set()
            await asyncio.gather(first, second)
            await server.aclose()

        asyncio.run(run())
