"""`repro serve` / `repro query` / `campaign status --rebuild-index` CLI."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.campaign.store import CampaignStore
from repro.cli import main
from repro.compose.blocks import resolve_block
from repro.serve import client


@pytest.fixture(scope="module")
def seeded_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("stores")
    store = CampaignStore(root, "seed")
    resolve_block(16, 4, store=store, steps=60)
    return root


def _wait_for_port(port_file, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text())
        time.sleep(0.02)
    raise TimeoutError(f"server never published its port in {port_file}")


class TestServeAndQuery:
    def test_serve_then_query_round_trip(self, seeded_root, tmp_path, capsys):
        port_file = tmp_path / "port"
        serve_exit: list[int] = []

        def serve():
            serve_exit.append(
                main(
                    ["serve", "--store", str(seeded_root), "--campaigns", "seed",
                     "--port", "0", "--port-file", str(port_file), "--no-refine"]
                )
            )

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            port = _wait_for_port(port_file)
            code = main(
                ["query", "16", "4", "--port-file", str(port_file), "--json"]
            )
            assert code == 0
            answer = json.loads(capsys.readouterr().out)
            assert answer["source"] == "index"
            assert answer["campaign"] == "seed"

            assert main(["query", "12", "4", "--port", str(port)]) == 0
            human = capsys.readouterr().out
            assert "source=bounds" in human
            assert "lower bound" in human
        finally:
            client.shutdown("127.0.0.1", port)
            thread.join(timeout=15)
        assert not thread.is_alive()
        assert serve_exit == [0]

    def test_query_against_dead_server_fails_cleanly(self, tmp_path):
        # Port 1 is privileged and unbound: connection refused, exit 1.
        assert main(["query", "16", "4", "--port", "1", "--timeout", "1"]) == 1


class TestRebuildIndexFlag:
    def test_status_rebuild_index_reports_and_heals(self, tmp_path, capsys):
        spec_doc = {
            "name": "cli-idx",
            "grid": {"n": [16], "r": [4]},
            "defaults": {"steps": 60, "restarts": 1},
        }
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec_doc))
        store_root = tmp_path / "campaigns"
        assert main(
            ["campaign", "run", str(spec_file), "--store", str(store_root)]
        ) == 0
        store = CampaignStore(store_root, "cli-idx")
        store.index_path.unlink()  # simulate a legacy store
        assert store.best_for(16, 4) is None
        capsys.readouterr()
        assert main(
            ["campaign", "status", str(spec_file), "--store", str(store_root),
             "--rebuild-index"]
        ) == 0
        out = capsys.readouterr().out
        assert "index rebuilt: 1 entry, 0 unreadable point(s) skipped" in out
        assert store.best_for(16, 4) is not None
