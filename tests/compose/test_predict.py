"""The closed-form predictor must equal kernel measurement bit for bit."""

from __future__ import annotations

import pytest

from repro.compose.mizuno import compose_blocks
from repro.compose.predict import (
    predict_h_aspl,
    predict_host_diameter,
    predict_weighted_sum,
    summarize_block,
)
from repro.core.annealing import AnnealingSchedule
from repro.core.construct import (
    clique_host_switch_graph,
    star_host_switch_graph,
)
from repro.core.metrics import h_aspl, h_aspl_and_diameter
from repro.core.solver import solve_orp


class TestSummarizeBlock:
    def test_summary_matches_direct_measurement(self):
        block = clique_host_switch_graph(24, 9)
        summary = summarize_block(block)
        assert summary.num_hosts == 24
        assert summary.num_switches == block.num_switches
        assert summary.h_aspl == h_aspl(block)

    def test_weighted_sum_is_ordered_pair_identity(self):
        # S_B relates to the h-ASPL through the same -n correction the
        # metric applies: A = (S_B/2 - n) / C(n, 2).
        block = clique_host_switch_graph(20, 8)
        s = summarize_block(block)
        n = s.num_hosts
        assert (0.5 * s.weighted_sum - n) / (n * (n - 1) / 2.0) == s.h_aspl

    def test_star_block_bearing_diameter_zero(self):
        block = star_host_switch_graph(5, 8)
        s = summarize_block(block)
        assert s.bearing_diameter == 0
        assert s.h_aspl == 2.0

    def test_rejects_single_host(self):
        with pytest.raises(ValueError, match=">= 2 hosts"):
            summarize_block(star_host_switch_graph(1, 4))


class TestPredictorExactness:
    """Predicted == measured with `==`, not approx (module contract)."""

    @pytest.mark.parametrize("copies", [2, 3, 5])
    def test_clique_block_exact(self, copies):
        block = clique_host_switch_graph(36, 11)
        fabric = compose_blocks(block, copies)
        summary = summarize_block(block)
        measured_aspl, measured_diam = h_aspl_and_diameter(fabric)
        assert predict_h_aspl(summary, copies) == measured_aspl
        assert predict_host_diameter(summary, copies) == measured_diam

    @pytest.mark.parametrize("copies", [2, 4])
    def test_annealed_block_exact(self, copies):
        block = solve_orp(
            64, 10, schedule=AnnealingSchedule(num_steps=300), seed=3
        ).graph
        fabric = compose_blocks(block, copies)
        summary = summarize_block(block)
        measured_aspl, measured_diam = h_aspl_and_diameter(fabric)
        assert predict_h_aspl(summary, copies) == measured_aspl
        assert predict_host_diameter(summary, copies) == measured_diam

    def test_large_fabric_exact(self):
        # n = 4096 composed from 8 copies of a 512-host clique block.
        block = clique_host_switch_graph(512, 45)
        fabric = compose_blocks(block, 8)
        assert fabric.num_hosts == 4096
        summary = summarize_block(block)
        measured_aspl, measured_diam = h_aspl_and_diameter(fabric)
        assert predict_h_aspl(summary, 8) == measured_aspl
        assert predict_host_diameter(summary, 8) == measured_diam

    def test_star_block_composition(self):
        # Star blocks: every cross pair at 3, every same-copy pair at 2.
        block = star_host_switch_graph(6, 8)
        summary = summarize_block(block)
        fabric = compose_blocks(block, 3)
        measured_aspl, measured_diam = h_aspl_and_diameter(fabric)
        assert predict_h_aspl(summary, 3) == measured_aspl
        assert predict_host_diameter(summary, 3) == measured_diam == 3.0

    def test_single_copy_predicts_block_itself(self):
        block = clique_host_switch_graph(24, 9)
        summary = summarize_block(block)
        assert predict_h_aspl(summary, 1) == summary.h_aspl
        assert predict_host_diameter(summary, 1) == h_aspl_and_diameter(block)[1]


class TestPredictWeightedSum:
    def test_closed_form(self):
        block = clique_host_switch_graph(10, 6)
        s = summarize_block(block)
        for c in (1, 2, 7):
            expected = c * c * s.weighted_sum + c * (c - 1) * 100
            assert predict_weighted_sum(s, c) == expected

    def test_overflow_guarded(self):
        block = clique_host_switch_graph(10, 6)
        s = summarize_block(block)
        with pytest.raises(ValueError, match="float64 integer range"):
            predict_h_aspl(s, 10**8)
