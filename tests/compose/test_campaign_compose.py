"""``kind: "compose"`` campaign points: normalize, run, cache, report."""

from __future__ import annotations

import pytest

from repro.campaign.report import format_report
from repro.campaign.spec import (
    SpecError,
    load_spec,
    normalize_point,
    point_digest,
)
from repro.campaign.store import CampaignStore
from repro.campaign.executor import run_campaign
from repro.compose.fabric import ComposeResult


def compose_spec(**overrides):
    document = {
        "format": "repro.campaign.spec/v1",
        "name": "compose-unit",
        "kind": "compose",
        "grid": {"n": [96], "r": [12]},
        "defaults": {"block_hosts": 24, "steps": 200, "measure": True},
    }
    document.update(overrides)
    return load_spec(document)


class TestNormalization:
    def test_keeps_kind_and_fills_defaults(self):
        point = normalize_point({"kind": "compose", "n": 96, "r": 12})
        assert point["kind"] == "compose"
        assert point["copies"] is None and point["block_hosts"] is None
        assert point["steps"] == 20_000 and point["measure"] is False

    def test_measure_accepts_only_bool(self):
        with pytest.raises(SpecError, match="measure"):
            normalize_point({"kind": "compose", "n": 96, "r": 12, "measure": 1})
        point = normalize_point(
            {"kind": "compose", "n": 96, "r": 12, "measure": True}
        )
        assert point["measure"] is True

    def test_bool_smuggled_as_int_rejected(self):
        with pytest.raises(SpecError, match="copies"):
            normalize_point({"kind": "compose", "n": 96, "r": 12, "copies": True})

    def test_range_checks(self):
        with pytest.raises(SpecError, match="n >= 2"):
            normalize_point({"kind": "compose", "n": 1, "r": 12})
        with pytest.raises(SpecError, match="radix >= 3"):
            normalize_point({"kind": "compose", "n": 96, "r": 2})
        with pytest.raises(SpecError, match="block_hosts"):
            normalize_point(
                {"kind": "compose", "n": 96, "r": 12, "block_hosts": 1}
            )

    def test_unknown_fields_rejected(self):
        with pytest.raises(SpecError, match="unknown compose point field"):
            normalize_point({"kind": "compose", "n": 96, "r": 12, "mode": "link"})

    def test_digest_stable_and_kind_forked(self):
        compose = {"kind": "compose", "n": 96, "r": 12}
        assert point_digest(compose) == point_digest(dict(compose))
        assert point_digest(compose) != point_digest({"n": 96, "r": 12})


class TestRunAndReport:
    def test_run_solves_and_round_trips(self, tmp_path):
        spec = compose_spec()
        result = run_campaign(spec, tmp_path)
        assert result.count("solved") == 1
        store = CampaignStore(tmp_path, spec.name)
        digest = spec.digests()[0]
        back = store.load_result(digest)
        assert isinstance(back, ComposeResult)
        assert back.measured_h_aspl == back.predicted_h_aspl
        assert back.graph is None  # fabric graph is not persisted

    def test_second_pass_is_cached(self, tmp_path):
        spec = compose_spec()
        run_campaign(spec, tmp_path)
        again = run_campaign(spec, tmp_path)
        assert again.count("cached") == 1
        assert not again.solver_work_done

    def test_block_lands_as_plain_orp_point(self, tmp_path):
        spec = compose_spec()
        run_campaign(spec, tmp_path)
        store = CampaignStore(tmp_path, spec.name)
        digest = spec.digests()[0]
        fabric_result = store.load_result(digest)
        # The block's own ORP artifact exists and best_for finds it.
        assert store.has_result(fabric_result.block_digest)
        best = store.best_for(fabric_result.block_n, fabric_result.block_r)
        assert best is not None and best.digest == fabric_result.block_digest

    def test_report_renders_compose_rows(self, tmp_path):
        spec = compose_spec()
        run_campaign(spec, tmp_path)
        text = format_report(spec, tmp_path)
        assert "copies=auto block=24" in text
        assert "1/1 points solved" in text

    def test_report_best_column(self, tmp_path):
        spec = compose_spec()
        run_campaign(spec, tmp_path)
        text = format_report(spec, tmp_path, best=True)
        assert "best(n,r)" in text
        # The fabric's (96, 12) has no plain-ORP result, only the block's
        # (24, 9) does, so this row's best column is empty.
        assert text.count("@") == 0
