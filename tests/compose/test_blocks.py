"""Block memoization through the campaign store."""

from __future__ import annotations

import pytest

from repro.campaign.spec import point_digest
from repro.campaign.store import CampaignStore
from repro.compose.blocks import block_point, resolve_block
from repro.obs import TelemetryRegistry


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path, "blocks")


class TestBlockPoint:
    def test_is_plain_orp_point(self):
        point = block_point(24, 6, steps=200)
        assert "kind" not in point
        assert point["n"] == 24 and point["r"] == 6 and point["steps"] == 200

    def test_digest_matches_campaign_digest(self):
        # A compose block and a campaign sweeping the same parameters must
        # share one store key.
        point = block_point(24, 6, steps=200, seed=3)
        assert point_digest(point) == point_digest(
            {"n": 24, "r": 6, "steps": 200, "seed": 3}
        )


class TestResolveBlock:
    def test_miss_solves_and_stores(self, store):
        block = resolve_block(24, 6, store=store, steps=200)
        assert block.source == "solved" and not block.cached
        assert store.has_result(block.digest)
        assert block.graph.num_hosts == 24

    def test_hit_is_cached_by_digest(self, store):
        first = resolve_block(24, 6, store=store, steps=200)
        again = resolve_block(24, 6, store=store, steps=200)
        assert again.cached and again.source == "store"
        assert again.digest == first.digest
        assert again.h_aspl == first.h_aspl
        assert again.graph == first.graph

    def test_different_params_fork_digests(self, store):
        a = resolve_block(24, 6, store=store, steps=200)
        b = resolve_block(24, 6, store=store, steps=300, use_best=False)
        assert a.digest != b.digest
        assert b.source == "solved"  # steps differ -> no exact hit

    def test_best_fallback_without_best_disabled(self, store):
        resolve_block(24, 6, store=store, steps=200)
        strict = resolve_block(24, 6, store=store, steps=300, use_best=False)
        assert strict.source == "solved"

    def test_best_fallback_serves_best_known(self, store):
        seeded = resolve_block(24, 6, store=store, steps=200)
        served = resolve_block(24, 6, store=store, steps=999)
        assert served.cached and served.source == "store-best"
        assert served.digest == seeded.digest
        assert served.h_aspl == seeded.h_aspl
        assert served.graph == seeded.graph

    def test_no_store_always_solves(self):
        block = resolve_block(24, 6, steps=200)
        assert block.source == "solved" and not block.cached

    def test_telemetry_events(self, store):
        tel = TelemetryRegistry("t")
        resolve_block(24, 6, store=store, steps=200, telemetry=tel)
        resolve_block(24, 6, store=store, steps=200, telemetry=tel)
        names = [e["name"] for e in tel.snapshot()["events"]]
        assert "compose.block_solved" in names
        assert "compose.block_cached" in names


class TestBestFor:
    def test_empty_store(self, store):
        assert store.best_for(24, 6) is None

    def test_picks_minimum_h_aspl(self, store):
        worse = resolve_block(24, 6, store=store, steps=50, seed=9)
        better = resolve_block(24, 6, store=store, steps=400, use_best=False)
        expected = min(
            (worse, better), key=lambda b: (b.h_aspl, b.digest)
        )
        best = store.best_for(24, 6)
        assert best is not None
        assert best.digest == expected.digest
        assert best.h_aspl == expected.h_aspl

    def test_filters_other_shapes(self, store):
        resolve_block(24, 6, store=store, steps=200)
        assert store.best_for(25, 6) is None
        assert store.best_for(24, 7) is None

    def test_skips_kinded_points(self, store, tmp_path):
        # A compose result at the same (n, r) must not masquerade as an
        # ORP block (it has no graph artifact and carries a kind).
        from repro.compose.fabric import build_fabric

        result = build_fabric(24, 8, copies=2, steps=100)
        store.save_result(
            "f" * 64,
            {"kind": "compose", "n": 24, "r": 8},
            result,
        )
        assert store.best_for(24, 8) is None
