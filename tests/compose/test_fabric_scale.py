"""build_fabric end-to-end, including the n >= 100,000 target regime.

The 100k build stays fast because the block lands in ``solve_orp``'s
trivial clique regime (no annealing) and the predictor works from one
block APSP instead of a fabric one.
"""

from __future__ import annotations

import pytest

from repro.campaign.store import CampaignStore
from repro.compose.fabric import ComposeResult, build_fabric
from repro.core.metrics import h_aspl_and_diameter
from repro.obs import clock as obs_clock


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path, "scale")


class TestBuildFabric:
    def test_measured_equals_predicted(self, store):
        result = build_fabric(
            96, 12, block_hosts=24, steps=200, store=store, measure=True
        )
        assert result.measured_h_aspl == result.predicted_h_aspl
        assert result.measured_diameter == result.predicted_diameter
        assert result.h_aspl == result.measured_h_aspl

    def test_bounds_bracket_measurement(self, store):
        result = build_fabric(
            96, 12, block_hosts=24, steps=200, store=store, measure=True
        )
        assert result.h_aspl_lower_bound <= result.measured_h_aspl + 1e-9
        assert result.shimizu_mori_bound <= result.measured_h_aspl + 1e-9
        assert result.diameter_lower_bound <= result.measured_diameter

    def test_warm_rerun_reuses_block(self, store):
        cold = build_fabric(96, 12, block_hosts=24, steps=200, store=store)
        warm = build_fabric(96, 12, block_hosts=24, steps=200, store=store)
        assert not cold.block_cached
        assert warm.block_cached and warm.block_source == "store"
        assert warm.block_digest == cold.block_digest
        assert warm.predicted_h_aspl == cold.predicted_h_aspl
        assert "cached" in warm.summary()

    def test_result_round_trips_without_graph(self, store):
        result = build_fabric(96, 12, block_hosts=24, steps=200, store=store)
        assert result.graph is not None
        back = ComposeResult.from_dict(result.to_dict())
        assert back.graph is None
        assert back.to_dict() == result.to_dict()
        assert back.h_aspl == result.h_aspl
        assert back.gap == result.gap

    def test_measure_matches_independent_apsp(self, store):
        result = build_fabric(
            128, 14, block_hosts=32, steps=200, store=store, measure=True
        )
        aspl, diam = h_aspl_and_diameter(result.graph)
        assert result.measured_h_aspl == aspl
        assert result.measured_diameter == diam


class TestHundredThousandHosts:
    @pytest.fixture(autouse=True)
    def _spot_check_contracts(self):
        # REPRO_CONTRACTS=full re-validates the whole graph per mutation
        # (O(m + E + n) each), which is quadratic across the ~35k glue
        # edges of a 100k-host build.  The test calls validate() on the
        # finished fabric itself, so cap the per-mutation level at "on".
        from repro.utils.contracts import contracts_level, set_contracts

        if contracts_level() != "full":
            yield
            return
        set_contracts("on")
        yield
        set_contracts(None)

    def test_100k_fabric_under_a_minute(self, tmp_path):
        # Block n_b=2500 at r_b=100 is clique-feasible (solve_orp's trivial
        # regime, no annealing), so 40 copies reach n=100,000 exactly at
        # fabric radix 139.  Acceptance: valid fabric, closed-form
        # prediction, bounds bracket — in well under a minute.
        store = CampaignStore(tmp_path, "big")
        t0 = obs_clock()
        result = build_fabric(100_000, 139, block_hosts=2500, store=store)
        wall = obs_clock() - t0
        assert result.n == 100_000 and result.copies == 40
        assert result.graph is not None
        assert result.graph.num_hosts == result.n
        result.graph.validate()
        assert result.predicted_h_aspl < 5.0
        assert result.h_aspl_lower_bound <= result.predicted_h_aspl
        assert result.shimizu_mori_bound <= result.predicted_h_aspl + 1e-9
        assert wall < 60.0

        # Warm re-run: the 2500-host block must come from the store.
        warm = build_fabric(100_000, 139, block_hosts=2500, store=store)
        assert warm.block_cached
        assert warm.predicted_h_aspl == result.predicted_h_aspl
