"""Tests for the composition plan arithmetic and the glue step."""

from __future__ import annotations

import pytest

from repro.compose.mizuno import (
    DEFAULT_BLOCK_HOSTS,
    compose_blocks,
    plan_composition,
)
from repro.core.construct import clique_host_switch_graph
from repro.core.metrics import switch_distance_matrix


class TestPlanComposition:
    def test_explicit_copies(self):
        plan = plan_composition(1000, 20, copies=4)
        assert plan.copies == 4
        assert plan.block_hosts == 250
        assert plan.block_radix == 20 - 3
        assert plan.n == 1000
        assert plan.requested_n == 1000

    def test_rounds_up_to_copy_multiple(self):
        plan = plan_composition(1001, 20, copies=4)
        assert plan.block_hosts == 251
        assert plan.n == 1004  # never fewer hosts than requested
        assert plan.requested_n == 1001

    def test_block_hosts_drives_copy_count(self):
        plan = plan_composition(10_000, 32, block_hosts=512)
        assert plan.copies == 20  # ceil(10000 / 512)
        assert plan.copies * plan.block_hosts >= 10_000
        assert plan.block_radix == 32 - 19

    def test_default_block_hosts(self):
        plan = plan_composition(3000, 16)
        assert plan.copies == 3  # ceil(3000 / 1024)
        assert plan.block_hosts == 1000
        assert DEFAULT_BLOCK_HOSTS == 1024

    def test_single_copy_degenerates_to_direct(self):
        plan = plan_composition(100, 8, copies=1)
        assert plan.block_radix == 8
        assert plan.block_hosts == 100

    def test_radix_budget_exhaustion(self):
        # 20 copies spend 19 ports; radix 21 leaves only 2 for the block.
        with pytest.raises(ValueError, match="radix budget"):
            plan_composition(10_000, 21, copies=20)

    def test_too_many_copies(self):
        with pytest.raises(ValueError, match="< 2 hosts per block"):
            plan_composition(4, 32, copies=4)

    def test_tiny_n_rejected(self):
        with pytest.raises(ValueError, match="n >= 2"):
            plan_composition(1, 8)


class TestComposeBlocks:
    def test_shape_and_validity(self):
        block = clique_host_switch_graph(12, 7)  # m=3, 4 hosts/switch
        fabric = compose_blocks(block, 4)
        assert fabric.num_hosts == 48
        assert fabric.num_switches == block.num_switches * 4
        assert fabric.radix == block.radix + 3
        fabric.validate()  # no-op if compose_blocks validated correctly

    def test_placement_preserved_per_copy(self):
        block = clique_host_switch_graph(10, 6)
        fabric = compose_blocks(block, 3)
        n_b, m_b = block.num_hosts, block.num_switches
        for c in range(3):
            for h in range(n_b):
                assert (
                    fabric.host_attachment(c * n_b + h)
                    == c * m_b + block.host_attachment(h)
                )

    def test_distance_law(self):
        # d((i, a), (j, b)) = d_B(a, b) + [i != j], for every switch pair.
        block = clique_host_switch_graph(12, 7)
        copies = 3
        fabric = compose_blocks(block, copies)
        m_b = block.num_switches
        d_block = switch_distance_matrix(block)
        d_fabric = switch_distance_matrix(fabric)
        for i in range(copies):
            for j in range(copies):
                for a in range(m_b):
                    for b in range(m_b):
                        expected = d_block[a, b] + (1 if i != j else 0)
                        assert d_fabric[i * m_b + a, j * m_b + b] == expected

    def test_explicit_radix_spare_ports(self):
        block = clique_host_switch_graph(12, 7)
        fabric = compose_blocks(block, 2, radix=12)
        assert fabric.radix == 12
        assert all(fabric.free_ports(s) >= 4 for s in range(fabric.num_switches))

    def test_insufficient_radix_rejected(self):
        block = clique_host_switch_graph(12, 7)
        with pytest.raises(ValueError, match="cannot carry"):
            compose_blocks(block, 4, radix=9)

    def test_single_copy_is_isomorphic_to_block(self):
        block = clique_host_switch_graph(12, 7)
        fabric = compose_blocks(block, 1)
        assert fabric.num_hosts == block.num_hosts
        assert fabric.num_switches == block.num_switches
        assert sorted(fabric.switch_edges()) == sorted(block.switch_edges())
