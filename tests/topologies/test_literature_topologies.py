"""Tests for the extension topologies: Slim Fly, Jellyfish, random-shortcut."""

from __future__ import annotations

import pytest

from repro.core.metrics import h_aspl, switch_distance_matrix
from repro.topologies import (
    jellyfish,
    jellyfish_spec,
    random_shortcut_ring,
    random_shortcut_spec,
    slim_fly,
    slim_fly_spec,
)
from repro.topologies.slimfly import valid_slim_fly_q


class TestSlimFly:
    def test_valid_q_detection(self):
        assert valid_slim_fly_q(5)
        assert valid_slim_fly_q(13)
        assert valid_slim_fly_q(17)
        assert not valid_slim_fly_q(7)  # 3 mod 4: not supported here
        assert not valid_slim_fly_q(9)  # not prime
        assert not valid_slim_fly_q(4)

    def test_spec_formulas(self):
        spec = slim_fly_spec(5)
        assert spec.num_switches == 2 * 25
        assert spec.params["degree"] == 7  # (3*5 - 1) / 2
        assert spec.params["p"] == 4  # ceil(7/2)
        assert spec.max_hosts == 200

    def test_mms_graph_is_regular_diameter_two(self):
        g, spec = slim_fly(5, num_hosts=50)
        degree = spec.params["degree"]
        assert all(g.switch_degree(s) == degree for s in range(g.num_switches))
        assert switch_distance_matrix(g).max() == 2

    def test_host_diameter_is_four(self):
        g, _ = slim_fly(5)  # full population
        from repro.core.metrics import diameter

        assert diameter(g) == 4.0

    def test_moore_efficiency(self):
        # MMS graphs have ~ (k^2+1) * 8/9 vertices at diameter 2 -> the
        # switch count is a large fraction of the Moore bound k^2 + 1.
        spec = slim_fly_spec(13)
        k = spec.params["degree"]
        assert spec.num_switches >= 0.85 * (k * k + 1)

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError, match="mod 4"):
            slim_fly(7)


class TestJellyfish:
    def test_structure(self):
        g, spec = jellyfish(num_switches=20, radix=8, hosts_per_switch=3, seed=0)
        assert g.num_hosts == 60
        assert all(g.hosts_on(s) == 3 for s in range(20))
        assert all(g.switch_degree(s) == 5 for s in range(20))
        g.validate()

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="no switch links"):
            jellyfish_spec(10, 4, 4)
        with pytest.raises(ValueError, match="must be <"):
            jellyfish_spec(4, 10, 2)

    def test_seeded_reproducibility(self):
        a, _ = jellyfish(16, 8, 2, seed=3)
        b, _ = jellyfish(16, 8, 2, seed=3)
        assert a == b

    def test_random_baseline_worse_than_annealed(self):
        # Jellyfish is the unoptimised baseline the paper's search beats.
        from repro.core.annealing import AnnealingSchedule, anneal

        g, _ = jellyfish(16, 8, 2, seed=5)
        result = anneal(g, schedule=AnnealingSchedule(num_steps=500), seed=5)
        assert result.h_aspl <= h_aspl(g)


class TestRandomShortcut:
    def test_ring_only(self):
        g, spec = random_shortcut_ring(10, 6, num_matchings=0, seed=0)
        assert g.num_switch_edges == 10
        assert all(g.switch_degree(s) == 2 for s in range(10))

    def test_matchings_added(self):
        g, spec = random_shortcut_ring(10, 6, num_matchings=2, seed=1)
        assert all(g.switch_degree(s) == 4 for s in range(10))
        assert spec.params["degree"] == 4
        g.validate()

    def test_shortcuts_shrink_aspl(self):
        # One host per switch (round-robin) so distances span the ring.
        ring, _ = random_shortcut_ring(
            30, 8, num_matchings=0, num_hosts=30, seed=2, fill="round-robin"
        )
        shortcut, _ = random_shortcut_ring(
            30, 8, num_matchings=2, num_hosts=30, seed=2, fill="round-robin"
        )
        assert h_aspl(shortcut) < h_aspl(ring)

    def test_odd_switch_count_rejected_with_matchings(self):
        with pytest.raises(ValueError, match="even"):
            random_shortcut_ring(9, 6, num_matchings=1)

    def test_radix_budget_enforced(self):
        with pytest.raises(ValueError, match="exceeds radix"):
            random_shortcut_ring(10, 4, num_matchings=2)

    def test_capacity(self):
        spec = random_shortcut_spec(10, 8, 2)
        assert spec.max_hosts == 10 * 4
