"""Tests for the conventional topology builders (paper Section 6.1)."""

from __future__ import annotations

import pytest

from repro.core.metrics import diameter, h_aspl, switch_distance_matrix
from repro.topologies import (
    available_topologies,
    build_topology,
    dragonfly,
    dragonfly_spec,
    fat_tree,
    fat_tree_spec,
    hypercube,
    mesh,
    torus,
    torus_spec,
)


class TestTorus:
    def test_paper_instance_formulae(self):
        # Paper Section 6.3.1: K=5, N=3, r=15 -> m=243, n<=1215.
        spec = torus_spec(5, 3, 15)
        assert spec.num_switches == 243
        assert spec.max_hosts == 1215

    def test_structure_small(self):
        g, spec = torus(2, 3, 8)
        # 3x3 torus: 9 switches, degree 4 -> 18 edges.
        assert g.num_switches == 9
        assert g.num_switch_edges == 18
        assert all(g.switch_degree(s) == 4 for s in range(9))
        g.validate()

    def test_base_two_avoids_parallel_edges(self):
        g, _ = torus(3, 2, 8)
        # 2x2x2: degree 3 (wrap +1 and -1 coincide).
        assert all(g.switch_degree(s) == 3 for s in range(8))

    def test_switch_diameter_matches_theory(self):
        g, _ = torus(2, 5, 8, num_hosts=25)
        d = switch_distance_matrix(g)
        # 5x5 torus: max distance = 2 + 2.
        assert d.max() == 4

    def test_radix_too_small_rejected(self):
        with pytest.raises(ValueError, match="must exceed"):
            torus(5, 3, 10)

    def test_sequential_fill_packs(self):
        g, _ = torus(2, 3, 8, num_hosts=5)
        assert g.host_counts().tolist() == [4, 1, 0, 0, 0, 0, 0, 0, 0]

    def test_round_robin_fill_spreads(self):
        g, _ = torus(2, 3, 8, num_hosts=5, fill="round-robin")
        assert g.host_counts().tolist() == [1, 1, 1, 1, 1, 0, 0, 0, 0]

    def test_capacity_enforced(self):
        with pytest.raises(ValueError, match="at most"):
            torus(2, 3, 8, num_hosts=100)


class TestDragonfly:
    def test_paper_instance_formulae(self):
        # Paper Section 6.3.2: a=8 -> r=15, m=264, n<=1056.
        spec = dragonfly_spec(8)
        assert spec.radix == 15
        assert spec.num_switches == 264
        assert spec.max_hosts == 1056
        assert spec.params["g"] == 33

    def test_odd_group_size_rejected(self):
        with pytest.raises(ValueError, match="even"):
            dragonfly_spec(7)

    def test_structure_a4(self):
        g, spec = dragonfly(4)
        # a=4: g=9 groups, m=36; each switch: 3 intra + 2 global = 5 links.
        assert g.num_switches == 36
        assert all(g.switch_degree(s) == 5 for s in range(36))
        g.validate()

    def test_one_global_link_per_group_pair(self):
        a = 4
        g, spec = dragonfly(a, num_hosts=1)
        groups = spec.params["g"]
        counts: dict[tuple[int, int], int] = {}
        for u, v in g.switch_edges():
            gu, gv = u // a, v // a
            if gu != gv:
                key = (min(gu, gv), max(gu, gv))
                counts[key] = counts.get(key, 0) + 1
        assert len(counts) == groups * (groups - 1) // 2
        assert set(counts.values()) == {1}

    def test_switch_graph_diameter_is_three(self):
        g, _ = dragonfly(4, num_hosts=1)
        assert switch_distance_matrix(g).max() == 3

    def test_full_graph_diameter_is_five(self):
        g, _ = dragonfly(4)
        assert diameter(g) == 5.0


class TestFatTree:
    def test_paper_instance_formulae(self):
        # Paper Section 6.3.3: K=16 -> r=16, m=320, n=1024.
        spec = fat_tree_spec(16)
        assert spec.radix == 16
        assert spec.num_switches == 320
        assert spec.max_hosts == 1024

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError, match="even"):
            fat_tree_spec(5)

    def test_structure_k4(self):
        g, _ = fat_tree(4)
        # K=4: 16 hosts, 20 switches; every switch uses <= 4 ports.
        assert g.num_hosts == 16
        assert g.num_switches == 20
        assert all(g.ports_used(s) <= 4 for s in range(20))
        g.validate()

    def test_edge_switches_carry_hosts_core_does_not(self):
        k = 4
        g, _ = fat_tree(k)
        for pod in range(k):
            for e in range(k // 2):
                assert g.hosts_on(pod * k + e) == k // 2
        for core in range(k * k, g.num_switches):
            assert g.hosts_on(core) == 0

    def test_host_diameter_is_six(self):
        g, _ = fat_tree(4)
        assert diameter(g) == 6.0
        assert h_aspl(g) < 6.0

    def test_full_bisection_structure(self):
        # Core layer has (K/2)^2 switches each linked to all K pods.
        k = 4
        g, _ = fat_tree(k)
        for i in range(k // 2):
            for j in range(k // 2):
                core = k * k + i * (k // 2) + j
                assert g.switch_degree(core) == k


class TestExtras:
    def test_hypercube_structure(self):
        g, spec = hypercube(4, 6)
        assert g.num_switches == 16
        assert all(g.switch_degree(s) == 4 for s in range(16))
        assert switch_distance_matrix(g).max() == 4

    def test_mesh_has_no_wraparound(self):
        g, _ = mesh(2, 3, 8, num_hosts=9)
        # corner switch degree 2, centre degree 4
        assert g.switch_degree(0) == 2
        assert g.switch_degree(4) == 4
        assert switch_distance_matrix(g).max() == 4  # corner to corner

    def test_registry_builds_by_name(self):
        g, spec = build_topology("torus", dimension=2, base=3, radix=8)
        assert spec.name == "torus"
        g2, spec2 = build_topology("fat-tree", k=4)
        assert spec2.name == "fat-tree"

    def test_registry_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_topology("moebius")

    def test_available_topologies_all_buildable(self):
        assert set(available_topologies()) == {
            "torus",
            "dragonfly",
            "fat-tree",
            "hypercube",
            "mesh",
            "slim-fly",
            "jellyfish",
            "random-shortcut-ring",
            "compose",
        }
