"""Tests for the declarative per-topology CLI parameter registry."""

from __future__ import annotations

import pytest

from repro.topologies import CLIParam, topology_cli_flags, topology_cli_kwargs
from repro.topologies.registry import _CLI_PARAMS, available_topologies


class TestCLIParam:
    def test_attr_derived_from_flag(self):
        assert CLIParam("--hosts-per-switch", "hosts_per_switch", 4).attr == (
            "hosts_per_switch"
        )
        assert CLIParam("--a", "a", 8).attr == "a"


class TestFlagUnion:
    def test_every_family_declares_params(self):
        assert set(_CLI_PARAMS) == set(available_topologies())

    def test_flags_deduplicated(self):
        flags = [p.flag for p in topology_cli_flags()]
        assert len(flags) == len(set(flags))
        assert "--dimension" in flags and "--radix" in flags

    def test_shared_flags_agree(self):
        # The registry invariant topology_cli_flags enforces: families that
        # reuse a flag share its default and help text.
        merged: dict[str, CLIParam] = {}
        for params in _CLI_PARAMS.values():
            for param in params:
                if param.flag in merged:
                    seen = merged[param.flag]
                    assert (seen.default, seen.help) == (param.default, param.help)
                merged[param.flag] = param


class TestKwargsMapping:
    def test_dest_differs_from_flag(self):
        # hypercube: the user types --dimension, the builder takes dim=.
        kwargs = topology_cli_kwargs("hypercube", {"dimension": 4, "radix": 12})
        assert kwargs == {"dim": 4, "radix": 12}

    def test_only_declared_flags_consulted(self):
        kwargs = topology_cli_kwargs(
            "fat-tree", {"k": 4, "dimension": 99, "radix": 99}
        )
        assert kwargs == {"k": 4}

    def test_hosts_becomes_num_hosts(self):
        kwargs = topology_cli_kwargs("dragonfly", {"a": 4, "hosts": 32})
        assert kwargs == {"a": 4, "num_hosts": 32}

    def test_jellyfish_does_not_accept_hosts(self):
        kwargs = topology_cli_kwargs(
            "jellyfish",
            {"switches": 16, "radix": 8, "hosts_per_switch": 3, "seed": 1,
             "hosts": 32},
        )
        assert kwargs == {
            "num_switches": 16, "radix": 8, "hosts_per_switch": 3, "seed": 1
        }

    def test_aliases_canonicalised(self):
        assert topology_cli_kwargs("fattree", {"k": 4}) == {"k": 4}
        assert topology_cli_kwargs("slimfly", {"q": 5}) == {"q": 5}

    def test_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            topology_cli_kwargs("klein-bottle", {})

    def test_every_family_builds_from_its_defaults(self):
        from repro.topologies import build_topology

        for name, params in _CLI_PARAMS.items():
            values = {p.attr: p.default for p in params}
            kwargs = topology_cli_kwargs(name, values)
            graph, spec = build_topology(name, **kwargs)
            assert graph.num_switches > 0, name
