"""Exhaustive small-instance verification of the paper's theory.

For tiny (n, r) we can enumerate *every* connected host-switch graph over
all feasible switch counts and check the paper's claims exactly:

- Theorem 1: the diameter lower bound is valid and tight somewhere.
- Theorem 2: the h-ASPL lower bound is valid for every graph.
- Theorem 3 (Appendix): a clique host-switch graph attains the optimum
  whenever the clique regime applies.
- Section 5.3's premise: the optimum over m is where the continuous Moore
  bound says it should be (within the discrete neighbourhood).
"""

from __future__ import annotations

from itertools import combinations, product

import pytest

from repro.core.bounds import diameter_lower_bound, h_aspl_lower_bound
from repro.core.construct import clique_host_switch_graph, minimum_clique_switch_count
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import h_aspl, h_aspl_and_diameter
from repro.utils.unionfind import UnionFind


def enumerate_host_switch_graphs(n: int, r: int, max_m: int):
    """Yield every connected host-switch graph with n hosts, radix r,
    and 1..max_m switches (host identity ignored: host *counts* per switch
    determine every metric, so we enumerate count vectors)."""
    for m in range(1, max_m + 1):
        pairs = list(combinations(range(m), 2))
        for mask in range(1 << len(pairs)):
            edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
            # Connectivity of the switch graph.
            uf = UnionFind(m)
            for a, b in edges:
                uf.union(a, b)
            if m > 1 and uf.components != 1:
                continue
            degree = [0] * m
            for a, b in edges:
                degree[a] += 1
                degree[b] += 1
            free = [r - d for d in degree]
            if any(f < 0 for f in free):
                continue
            # All host-count vectors: k_i in 0..free_i summing to n.
            for counts in _count_vectors(free, n):
                g = HostSwitchGraph(m, r)
                for a, b in edges:
                    g.add_switch_edge(a, b)
                for s, k in enumerate(counts):
                    for _ in range(k):
                        g.attach_host(s)
                yield g


def _count_vectors(free: list[int], total: int):
    if len(free) == 1:
        if 0 <= total <= free[0]:
            yield (total,)
        return
    for k in range(min(free[0], total) + 1):
        for rest in _count_vectors(free[1:], total - k):
            yield (k,) + rest


@pytest.fixture(scope="module")
def exhaustive_5_4():
    """All connected host-switch graphs for n=5, r=4, m<=4 (with metrics)."""
    results = []
    for g in enumerate_host_switch_graphs(5, 4, 4):
        aspl, diam = h_aspl_and_diameter(g)
        if aspl < float("inf"):
            results.append((g, aspl, diam))
    return results


class TestExhaustive:
    def test_enumeration_is_nontrivial(self, exhaustive_5_4):
        assert len(exhaustive_5_4) > 50

    def test_theorem1_valid_and_tight(self, exhaustive_5_4):
        lb = diameter_lower_bound(5, 4)
        diameters = [d for _, _, d in exhaustive_5_4]
        assert all(d >= lb for d in diameters)
        assert lb in diameters  # tight: some graph achieves it

    def test_theorem2_valid(self, exhaustive_5_4):
        lb = h_aspl_lower_bound(5, 4)
        assert all(a >= lb - 1e-12 for _, a, _ in exhaustive_5_4)

    def test_theorem3_clique_is_optimal(self, exhaustive_5_4):
        # n=5, r=4: no single switch fits (5 > 4); the clique construction
        # must match the exhaustive optimum.
        best = min(a for _, a, _ in exhaustive_5_4)
        clique = clique_host_switch_graph(5, 4)
        assert h_aspl(clique) == pytest.approx(best)

    def test_optimal_m_matches_clique_minimum(self, exhaustive_5_4):
        best_graph, best, _ = min(exhaustive_5_4, key=lambda t: t[1])
        assert best_graph.num_switches == minimum_clique_switch_count(5, 4)


class TestExhaustiveSecondInstance:
    @pytest.fixture(scope="class")
    def exhaustive_6_3(self):
        results = []
        for g in enumerate_host_switch_graphs(6, 3, 5):
            aspl, diam = h_aspl_and_diameter(g)
            if aspl < float("inf"):
                results.append((g, aspl, diam))
        return results

    def test_bounds_hold_at_r3(self, exhaustive_6_3):
        # r=3 exercises the r-2 = 1 edge case of Theorem 2's alpha.
        a_lb = h_aspl_lower_bound(6, 3)
        d_lb = diameter_lower_bound(6, 3)
        assert all(a >= a_lb - 1e-12 for _, a, _ in exhaustive_6_3)
        assert all(d >= d_lb for _, _, d in exhaustive_6_3)

    def test_optimum_found_by_solver_quality(self, exhaustive_6_3):
        # The exhaustive optimum exists; the randomized solver should get
        # within a small factor on this tiny instance.
        from repro import AnnealingSchedule, solve_orp

        best = min(a for _, a, _ in exhaustive_6_3)
        sol = solve_orp(
            6, 3, schedule=AnnealingSchedule(num_steps=1_000), seed=1
        )
        assert sol.h_aspl <= best * 1.15 + 1e-9


class TestLemma1Construction:
    def test_switch_to_host_conversion_reduces_single_source_aspl(self):
        """Lemma 1's rewriting: a frontier switch with exactly one host can
        become a host, lowering the source's average distance."""
        # Path s0 - s1 - s2 with the far switch s2 holding exactly 1 host.
        g = HostSwitchGraph.from_edges(3, 4, [(0, 1), (1, 2)], [0, 0, 2])
        before = h_aspl(g)
        # The conversion: delete s2, attach its host to s1 directly.
        g2 = HostSwitchGraph.from_edges(2, 4, [(0, 1)], [0, 0, 1])
        after = h_aspl(g2)
        assert after < before


class TestFormula1:
    @pytest.mark.parametrize("n,m,r", [(12, 4, 6), (24, 8, 6), (32, 8, 8)])
    def test_regular_graph_relation(self, n, m, r):
        from repro.core.construct import random_regular_host_switch_graph
        from repro.core.metrics import switch_aspl

        g = random_regular_host_switch_graph(n, m, r, seed=0)
        lhs = h_aspl(g)
        rhs = switch_aspl(g) * (m * n - n) / (m * n - m) + 2.0
        assert lhs == pytest.approx(rhs)
