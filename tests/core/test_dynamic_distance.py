"""Unit tests for :class:`repro.core.incremental.DynamicDistanceMatrix`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construct import random_regular_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.incremental import DynamicDistanceMatrix
from repro.core.metrics import switch_distance_matrix


def exact(graph: HostSwitchGraph, removed=()) -> np.ndarray:
    """From-scratch distances on graph minus ``removed`` switch edges."""
    g = graph.copy()
    for a, b in removed:
        g.remove_switch_edge(a, b)
    return switch_distance_matrix(g)


class TestConstruction:
    def test_initial_matrix_matches_apsp(self, fig1_graph):
        ddm = DynamicDistanceMatrix(fig1_graph)
        assert np.array_equal(ddm.dist, switch_distance_matrix(fig1_graph))
        assert ddm.num_switches == fig1_graph.num_switches
        assert ddm.is_connected()

    def test_dist_is_a_live_view(self, fig1_graph):
        ddm = DynamicDistanceMatrix(fig1_graph)
        view = ddm.dist
        ddm.remove_edge(0, 1)
        assert np.array_equal(view, ddm.dist)  # same array, mutated in place
        assert view is ddm.dist


class TestRemoveAdd:
    def test_remove_matches_rebuild(self, fig1_graph):
        ddm = DynamicDistanceMatrix(fig1_graph)
        ddm.remove_edge(0, 1)
        assert np.array_equal(ddm.dist, exact(fig1_graph, [(0, 1)]))

    def test_remove_then_add_restores_exactly(self, fig1_graph):
        ddm = DynamicDistanceMatrix(fig1_graph)
        before = ddm.dist.copy()
        ddm.remove_edge(1, 2)
        ddm.add_edge(1, 2)
        assert np.array_equal(ddm.dist, before)

    def test_disconnecting_removal_yields_inf(self):
        g = HostSwitchGraph(2, radix=3)
        g.add_switch_edge(0, 1)
        g.attach_host(0)
        g.attach_host(1)
        ddm = DynamicDistanceMatrix(g)
        ddm.remove_edge(0, 1)
        assert np.isinf(ddm.dist[0, 1])
        assert not ddm.is_connected()
        ddm.add_edge(0, 1)
        assert ddm.dist[0, 1] == 1.0

    def test_random_remove_add_walk_stays_exact(self):
        graph = random_regular_host_switch_graph(30, 10, 6, seed=5)
        ddm = DynamicDistanceMatrix(graph)
        rng = np.random.default_rng(6)
        edges = sorted(graph.switch_edges())
        removed: list[tuple[int, int]] = []
        for _ in range(40):
            if removed and rng.random() < 0.5:
                ddm.add_edge(*removed.pop(int(rng.integers(len(removed)))))
            else:
                a, b = edges[int(rng.integers(len(edges)))]
                if not ddm.has_edge(a, b):
                    continue
                ddm.remove_edge(a, b)
                removed.append((a, b))
            assert np.array_equal(ddm.dist, exact(graph, removed))

    def test_validation_errors(self, fig1_graph):
        ddm = DynamicDistanceMatrix(fig1_graph)
        with pytest.raises(ValueError, match="no switch edge"):
            ddm.remove_edge(0, 2)  # ring: not an edge
        with pytest.raises(ValueError, match="already present"):
            ddm.add_edge(0, 1)
        with pytest.raises(ValueError, match="out of range"):
            ddm.remove_edge(0, 99)
        with pytest.raises(ValueError, match="self-loop"):
            ddm.remove_edge(1, 1)
        with pytest.raises(ValueError, match="out of range"):
            ddm.neighbors(99)


class TestRemoveSwitch:
    def test_returns_sorted_incident_edges(self, fig1_graph):
        ddm = DynamicDistanceMatrix(fig1_graph)
        removed = ddm.remove_switch(1)
        assert removed == ((0, 1), (1, 2))
        assert np.array_equal(ddm.dist, exact(fig1_graph, removed))

    def test_readding_removed_edges_restores(self, fig1_graph):
        ddm = DynamicDistanceMatrix(fig1_graph)
        before = ddm.dist.copy()
        removed = ddm.remove_switch(2)
        for a, b in removed:
            ddm.add_edge(a, b)
        assert np.array_equal(ddm.dist, before)

    def test_isolated_switch_rows_are_inf(self, fig1_graph):
        ddm = DynamicDistanceMatrix(fig1_graph)
        ddm.remove_switch(3)
        others = [0, 1, 2]
        assert np.isinf(ddm.dist[3, others]).all()
        assert np.isinf(ddm.dist[others, 3]).all()
        assert ddm.dist[3, 3] == 0.0
