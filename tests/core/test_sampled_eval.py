"""Tests for the sampled h-ASPL estimator and sampled-mode annealing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annealing import AnnealingSchedule, anneal
from repro.core.construct import random_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import h_aspl, h_aspl_sampled


class TestEstimator:
    def test_full_sample_is_exact(self):
        g = random_host_switch_graph(40, 10, 8, seed=0)
        bearing = np.flatnonzero(g.host_counts() > 0)
        assert h_aspl_sampled(g, bearing) == pytest.approx(h_aspl(g))

    def test_single_source_matches_per_source_mean(self):
        g = HostSwitchGraph.from_edges(3, 4, [(0, 1), (1, 2)], [0, 1, 2, 2])
        # From switch 0's host: distances 3 (s1 host), 4, 4 -> mean 11/3.
        assert h_aspl_sampled(g, np.asarray([0])) == pytest.approx(11 / 3)

    def test_hostless_source_rejected(self):
        g = HostSwitchGraph.from_edges(3, 4, [(0, 1), (1, 2)], [0, 0, 2])
        with pytest.raises(ValueError, match="at least one host"):
            h_aspl_sampled(g, np.asarray([1]))

    def test_disconnected_gives_inf(self):
        g = HostSwitchGraph.from_edges(3, 4, [(0, 1)], [0, 1, 2])
        assert h_aspl_sampled(g, np.asarray([0])) == float("inf")

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 5_000))
    def test_estimate_close_to_exact(self, seed):
        g = random_host_switch_graph(60, 15, 8, seed=seed)
        exact = h_aspl(g)
        rng = np.random.default_rng(seed)
        counts = g.host_counts().astype(float)
        bearing = np.flatnonzero(counts > 0)
        probs = counts[bearing] / counts[bearing].sum()
        sample = rng.choice(bearing, size=min(8, len(bearing)), replace=False, p=probs)
        estimate = h_aspl_sampled(g, sample)
        assert estimate == pytest.approx(exact, rel=0.25)

    def test_unbiased_over_many_samples(self):
        g = random_host_switch_graph(60, 15, 8, seed=7)
        exact = h_aspl(g)
        rng = np.random.default_rng(7)
        counts = g.host_counts().astype(float)
        bearing = np.flatnonzero(counts > 0)
        probs = counts[bearing] / counts[bearing].sum()
        estimates = []
        for _ in range(200):
            # Size-1 samples drawn ∝ host count: exactly unbiased.
            sample = rng.choice(bearing, size=1, p=probs)
            estimates.append(h_aspl_sampled(g, sample))
        assert np.mean(estimates) == pytest.approx(exact, rel=0.02)


class TestSampledAnnealing:
    def test_improves_exact_metric(self):
        g = random_host_switch_graph(80, 20, 8, seed=1)
        start = h_aspl(g)
        res = anneal(
            g,
            schedule=AnnealingSchedule(num_steps=400),
            seed=2,
            eval_sources=6,
            eval_refresh=50,
        )
        # Final reported metrics are exact and the search made progress.
        assert res.h_aspl == pytest.approx(h_aspl(res.graph))
        assert res.h_aspl < start
        res.graph.validate()

    def test_validation_of_parameters(self):
        g = random_host_switch_graph(20, 6, 8, seed=0)
        with pytest.raises(ValueError, match="eval_sources"):
            anneal(g, eval_sources=0)

    def test_deterministic_under_seed(self):
        g = random_host_switch_graph(40, 12, 8, seed=3)
        a = anneal(g, schedule=AnnealingSchedule(num_steps=200), seed=5, eval_sources=4)
        b = anneal(g, schedule=AnnealingSchedule(num_steps=200), seed=5, eval_sources=4)
        assert a.h_aspl == b.h_aspl
        assert a.graph == b.graph

    def test_sampled_mode_is_cheaper_per_step(self):
        """Sampled evaluation does fewer BFS passes; just verify it runs a
        large instance in bounded steps without error."""
        g = random_host_switch_graph(300, 75, 10, seed=4)
        res = anneal(
            g, schedule=AnnealingSchedule(num_steps=60), seed=4, eval_sources=5
        )
        assert res.steps == 60
        assert res.h_aspl < float("inf")
