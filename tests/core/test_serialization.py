"""Tests for HSG text (de)serialization and solver-result round trips."""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import random_host_switch_graph
from repro.core.serialization import (
    annealing_result_from_dict,
    annealing_result_to_dict,
    graph_from_text,
    graph_to_text,
    load_graph,
    orp_solution_from_dict,
    orp_solution_to_dict,
    restart_summary_from_dict,
    restart_summary_to_dict,
    save_graph,
)


class TestRoundTrip:
    def test_fig1_roundtrip(self, fig1_graph):
        text = graph_to_text(fig1_graph)
        back = graph_from_text(text)
        assert back == fig1_graph

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_graph_roundtrip(self, seed):
        g = random_host_switch_graph(18, 6, 8, seed=seed)
        assert graph_from_text(graph_to_text(g)) == g

    def test_file_roundtrip(self, tmp_path, clique4_graph):
        path = tmp_path / "graph.hsg"
        save_graph(clique4_graph, path)
        assert load_graph(path) == clique4_graph

    def test_comments_and_blank_lines_ignored(self, clique4_graph):
        text = graph_to_text(clique4_graph)
        lines = text.splitlines()
        noisy = "\n".join(
            ["# a comment", lines[0], "", "  # indented comment"] + lines[1:]
        )
        assert graph_from_text(noisy) == clique4_graph


class TestFormatErrors:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="HSG v1"):
            graph_from_text("WRONG\nn 1 m 1 r 3\nswitch-edges 0\nhosts 0")

    def test_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            graph_from_text("HSG v1\nq 1 m 1 r 3\nswitch-edges 0\nhosts 0")

    def test_edge_count_mismatch(self):
        text = "HSG v1\nn 2 m 2 r 3\nswitch-edges 2\n0 1\nhosts 0 1"
        with pytest.raises(ValueError, match="edge"):
            graph_from_text(text)

    def test_host_count_mismatch(self):
        text = "HSG v1\nn 3 m 2 r 3\nswitch-edges 1\n0 1\nhosts 0 1"
        with pytest.raises(ValueError, match="hosts line"):
            graph_from_text(text)

    def test_invalid_graph_rejected_by_validate(self):
        # Host attached beyond the radix: parser must surface the violation.
        text = "HSG v1\nn 4 m 1 r 3\nswitch-edges 0\nhosts 0 0 0 0"
        with pytest.raises(ValueError):
            graph_from_text(text)

    def test_deterministic_output(self, fig1_graph):
        assert graph_to_text(fig1_graph) == graph_to_text(fig1_graph.copy())


@pytest.fixture(scope="module")
def solution():
    """A small solved ORP whose nested records exercise every code path."""
    from repro.core.annealing import AnnealingSchedule
    from repro.core.solver import solve_orp

    return solve_orp(
        24, 6, schedule=AnnealingSchedule(num_steps=200), restarts=2, seed=3
    )


class TestResultRoundTrips:
    def test_restart_summary(self, solution):
        original = solution.restarts[0]
        data = json.loads(json.dumps(restart_summary_to_dict(original)))
        assert restart_summary_from_dict(data) == original

    def test_annealing_result(self, solution):
        original = solution.annealing
        data = json.loads(json.dumps(annealing_result_to_dict(original)))
        back = annealing_result_from_dict(data)
        assert back.graph == original.graph
        fields = asdict(back)
        fields.pop("graph")
        expected = asdict(original)
        expected.pop("graph")
        assert fields == expected

    def test_orp_solution(self, solution):
        data = json.loads(json.dumps(orp_solution_to_dict(solution)))
        back = orp_solution_from_dict(data)
        assert back.graph == solution.graph
        assert back.annealing.graph == solution.annealing.graph
        assert back.restarts == solution.restarts
        for field in ("n", "r", "m", "h_aspl", "diameter",
                      "h_aspl_lower_bound", "diameter_lower_bound",
                      "moore_bound_at_m", "m_predicted"):
            assert getattr(back, field) == getattr(solution, field), field
        # Derived quantities survive too.
        assert back.gap == solution.gap
        assert back.summary() == solution.summary()

    def test_orp_solution_without_annealing(self, solution):
        data = orp_solution_to_dict(solution)
        data["annealing"] = None
        data["restarts"] = []
        back = orp_solution_from_dict(json.loads(json.dumps(data)))
        assert back.annealing is None
        assert back.restarts == []

    def test_wrong_kind_rejected(self, solution):
        data = orp_solution_to_dict(solution)
        with pytest.raises(ValueError, match="kind"):
            annealing_result_from_dict(data)

    def test_wrong_format_rejected(self, solution):
        data = dict(restart_summary_to_dict(solution.restarts[0]),
                    format="repro.result/v99")
        with pytest.raises(ValueError, match="repro.result/v1"):
            restart_summary_from_dict(data)
