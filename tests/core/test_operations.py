"""Tests for swap / swing moves: legality, apply/undo, invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import random_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.operations import SwapMove, SwingMove, propose_swap, propose_swing


def path_graph(num_switches: int = 4, hosts_per: int = 1, radix: int = 6):
    """Path of switches with hosts, handy for handcrafted moves."""
    g = HostSwitchGraph(num_switches, radix)
    for a in range(num_switches - 1):
        g.add_switch_edge(a, a + 1)
    for s in range(num_switches):
        for _ in range(hosts_per):
            g.attach_host(s)
    return g


def disjoint_edges_graph(radix: int = 6):
    """Four switches with only edges {0,1} and {2,3} (swap-friendly)."""
    g = HostSwitchGraph(4, radix)
    g.add_switch_edge(0, 1)
    g.add_switch_edge(2, 3)
    for s in range(4):
        g.attach_host(s)
    return g


class TestSwapMove:
    def test_apply_rewires(self):
        g = disjoint_edges_graph()
        move = SwapMove(0, 1, 2, 3)
        assert move.is_legal(g)
        move.apply(g)
        assert g.has_switch_edge(0, 3)
        assert g.has_switch_edge(1, 2)
        assert not g.has_switch_edge(0, 1)
        assert not g.has_switch_edge(2, 3)
        g.validate()

    def test_undo_restores_exactly(self):
        g = disjoint_edges_graph()
        before = g.copy()
        move = SwapMove(0, 1, 2, 3)
        move.apply(g)
        move.undo(g)
        assert g == before

    def test_degrees_preserved(self):
        g = disjoint_edges_graph()
        degrees = [g.switch_degree(s) for s in range(4)]
        SwapMove(0, 1, 2, 3).apply(g)
        assert [g.switch_degree(s) for s in range(4)] == degrees

    def test_illegal_when_edge_missing(self):
        g = disjoint_edges_graph()
        assert not SwapMove(0, 2, 1, 3).is_legal(g)

    def test_illegal_when_target_exists(self):
        g = disjoint_edges_graph()
        g.add_switch_edge(0, 3)
        assert not SwapMove(0, 1, 2, 3).is_legal(g)

    def test_illegal_in_path_where_target_edge_present(self):
        # In a path 0-1-2-3, the rewired edge {1,2} already exists.
        g = path_graph(4)
        assert not SwapMove(0, 1, 2, 3).is_legal(g)

    def test_illegal_on_shared_endpoint(self):
        g = disjoint_edges_graph()
        assert not SwapMove(0, 1, 1, 2).is_legal(g)


class TestSwingMove:
    def test_apply_moves_host_and_edge(self):
        g = path_graph(3, hosts_per=1)
        # swing(s0, s1, s2): edge {0,1} + host on 2 -> edge {0,2} + host on 1.
        move = SwingMove(0, 1, 2)
        assert move.is_legal(g)
        move.apply(g)
        assert g.has_switch_edge(0, 2)
        assert not g.has_switch_edge(0, 1)
        assert g.hosts_on(1) == 2
        assert g.hosts_on(2) == 0
        g.validate()

    def test_ports_preserved(self):
        g = path_graph(3, hosts_per=2)
        ports = [g.ports_used(s) for s in range(3)]
        SwingMove(0, 1, 2).apply(g)
        assert [g.ports_used(s) for s in range(3)] == ports

    def test_undo_restores_counts_and_edges(self):
        g = path_graph(3, hosts_per=2)
        move = SwingMove(0, 1, 2)
        move.apply(g)
        move.undo(g)
        assert g.has_switch_edge(0, 1)
        assert not g.has_switch_edge(0, 2)
        assert g.host_counts().tolist() == [2, 2, 2]

    def test_inverse_is_legal_after_apply(self):
        g = path_graph(3, hosts_per=1)
        move = SwingMove(0, 1, 2)
        move.apply(g)
        inv = move.inverse()
        assert inv.is_legal(g)
        inv.apply(g)
        assert g.host_counts().tolist() == [1, 1, 1]

    def test_illegal_without_host(self):
        g = HostSwitchGraph(3, 6)
        g.add_switch_edge(0, 1)
        g.add_switch_edge(1, 2)
        g.attach_host(0)
        assert not SwingMove(0, 1, 2).is_legal(g)  # no host on s2

    def test_illegal_when_new_edge_exists(self):
        g = path_graph(3)
        g.add_switch_edge(0, 2)
        assert not SwingMove(0, 1, 2).is_legal(g)

    def test_illegal_on_duplicate_switches(self):
        g = path_graph(3)
        assert not SwingMove(0, 1, 1).is_legal(g)
        assert not SwingMove(0, 0, 2).is_legal(g)


class TestProposals:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 5_000))
    def test_proposed_swaps_are_legal_and_undoable(self, seed):
        rng = np.random.default_rng(seed)
        g = random_host_switch_graph(20, 6, 8, seed=seed)
        edges = [tuple(sorted(e)) for e in g.switch_edges()]
        before = g.copy()
        move = propose_swap(edges, rng, g)
        if move is not None:
            move.apply(g)
            g.validate()
            move.undo(g)
        assert g == before

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 5_000))
    def test_proposed_swings_are_legal_and_undoable(self, seed):
        rng = np.random.default_rng(seed)
        g = random_host_switch_graph(20, 6, 8, seed=seed)
        edges = [tuple(sorted(e)) for e in g.switch_edges()]
        before = g.copy()
        move = propose_swing(edges, rng, g)
        if move is not None:
            host_count_before = g.num_hosts
            move.apply(g)
            g.validate()
            assert g.num_hosts == host_count_before
            move.undo(g)
        assert g == before

    def test_propose_swap_needs_two_edges(self):
        g = HostSwitchGraph.from_edges(2, 4, [(0, 1)], [0, 1])
        rng = np.random.default_rng(0)
        assert propose_swap([(0, 1)], rng, g) is None

    def test_propose_swing_needs_edges_and_hosts(self):
        g = HostSwitchGraph(2, 4)
        rng = np.random.default_rng(0)
        assert propose_swing([], rng, g) is None
