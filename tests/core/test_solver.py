"""Tests for the end-to-end ORP solver."""

from __future__ import annotations

import pytest

from repro.core.annealing import AnnealingSchedule
from repro.core.metrics import h_aspl
from repro.core.solver import solve_orp


class TestTrivialRegimes:
    def test_star_regime(self):
        sol = solve_orp(6, 8, seed=0)
        assert sol.m == 1
        assert sol.h_aspl == 2.0
        assert sol.h_aspl == sol.h_aspl_lower_bound
        assert sol.annealing is None

    def test_clique_regime(self):
        # n=20, r=8: clique of m=4 (capacity 4*5=20) fits exactly.
        sol = solve_orp(20, 8, seed=0)
        assert sol.annealing is None
        m = sol.m
        assert sol.graph.num_switch_edges == m * (m - 1) // 2
        # Clique optimality (Theorem 3): diameter 3, h-ASPL < 3.
        assert sol.h_aspl < 3.0

    def test_solution_graph_is_valid(self):
        sol = solve_orp(20, 8, seed=0)
        sol.graph.validate()
        assert sol.graph.num_hosts == 20


class TestSearchRegime:
    def test_uses_predicted_m_by_default(self):
        sol = solve_orp(
            64, 8, schedule=AnnealingSchedule(num_steps=200), seed=1
        )
        assert sol.m == sol.m_predicted
        assert sol.graph.num_switches == sol.m
        assert sol.annealing is not None

    def test_m_override(self):
        sol = solve_orp(
            64, 8, m=30, schedule=AnnealingSchedule(num_steps=200), seed=1
        )
        assert sol.m == 30

    def test_bounds_respected(self):
        sol = solve_orp(64, 8, schedule=AnnealingSchedule(num_steps=400), seed=2)
        assert sol.h_aspl >= sol.h_aspl_lower_bound - 1e-9
        assert sol.diameter >= sol.diameter_lower_bound
        assert sol.gap >= -1e-12

    def test_restarts_keep_best(self):
        sol1 = solve_orp(48, 8, schedule=AnnealingSchedule(num_steps=150), seed=3)
        sol3 = solve_orp(
            48, 8, schedule=AnnealingSchedule(num_steps=150), restarts=3, seed=3
        )
        assert sol3.h_aspl <= sol1.h_aspl + 1e-9

    def test_deterministic_under_seed(self):
        a = solve_orp(48, 8, schedule=AnnealingSchedule(num_steps=150), seed=9)
        b = solve_orp(48, 8, schedule=AnnealingSchedule(num_steps=150), seed=9)
        assert a.h_aspl == b.h_aspl
        assert a.graph == b.graph

    def test_summary_mentions_key_numbers(self):
        sol = solve_orp(48, 8, schedule=AnnealingSchedule(num_steps=100), seed=4)
        text = sol.summary()
        assert "n=48" in text and "r=8" in text
        assert "h-ASPL" in text and "diameter" in text

    def test_search_beats_naive_random(self):
        from repro.core.construct import random_host_switch_graph

        sol = solve_orp(96, 8, schedule=AnnealingSchedule(num_steps=800), seed=5)
        naive = random_host_switch_graph(96, sol.m, 8, seed=5)
        assert sol.h_aspl < h_aspl(naive)


class TestParallelRestarts:
    def test_parallel_matches_serial(self):
        # Restart seeds are spawned from one master SeedSequence, so the
        # process-pool fan-out must return the same best graph as the
        # serial loop for the same master seed.
        schedule = AnnealingSchedule(num_steps=150)
        serial = solve_orp(48, 8, schedule=schedule, restarts=4, seed=3)
        parallel = solve_orp(48, 8, schedule=schedule, restarts=4, jobs=4, seed=3)
        assert serial.h_aspl == parallel.h_aspl
        assert serial.diameter == parallel.diameter
        assert serial.graph == parallel.graph

    def test_jobs_capped_by_restarts(self):
        schedule = AnnealingSchedule(num_steps=100)
        sol = solve_orp(48, 8, schedule=schedule, restarts=2, jobs=16, seed=1)
        serial = solve_orp(48, 8, schedule=schedule, restarts=2, seed=1)
        assert sol.graph == serial.graph

    def test_first_restart_stable_across_restart_counts(self):
        # spawn(k)[0] is the same child for every k: adding restarts only
        # adds candidates, it never perturbs earlier trajectories.
        schedule = AnnealingSchedule(num_steps=120)
        one = solve_orp(48, 8, schedule=schedule, restarts=1, seed=7)
        three = solve_orp(48, 8, schedule=schedule, restarts=3, seed=7)
        assert three.h_aspl <= one.h_aspl + 1e-12

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            solve_orp(48, 8, jobs=0, seed=0)
