"""Unit tests for the HostSwitchGraph data structure."""

from __future__ import annotations

import pytest

from repro.core.hostswitch import HostSwitchGraph


class TestConstruction:
    def test_empty_graph_properties(self):
        g = HostSwitchGraph(num_switches=3, radix=4)
        assert g.num_switches == 3
        assert g.num_hosts == 0
        assert g.num_switch_edges == 0
        assert g.radix == 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HostSwitchGraph(num_switches=0, radix=4)
        with pytest.raises(ValueError):
            HostSwitchGraph(num_switches=3, radix=0)

    def test_from_edges_builds_and_validates(self):
        g = HostSwitchGraph.from_edges(3, 4, [(0, 1), (1, 2)], [0, 1, 2, 2])
        assert g.num_hosts == 4
        assert g.hosts_on(2) == 2
        g.validate()

    def test_repr_mentions_sizes(self):
        g = HostSwitchGraph.from_edges(2, 4, [(0, 1)], [0, 1])
        text = repr(g)
        assert "n=2" in text and "m=2" in text and "r=4" in text


class TestSwitchEdges:
    def test_add_and_query(self):
        g = HostSwitchGraph(3, 4)
        g.add_switch_edge(0, 1)
        assert g.has_switch_edge(0, 1)
        assert g.has_switch_edge(1, 0)
        assert not g.has_switch_edge(0, 2)
        assert g.switch_degree(0) == 1
        assert g.num_switch_edges == 1

    def test_self_loop_rejected(self):
        g = HostSwitchGraph(3, 4)
        with pytest.raises(ValueError, match="self loop"):
            g.add_switch_edge(1, 1)

    def test_parallel_edge_rejected(self):
        g = HostSwitchGraph(3, 4)
        g.add_switch_edge(0, 1)
        with pytest.raises(ValueError, match="already exists"):
            g.add_switch_edge(1, 0)

    def test_radix_enforced_on_edges(self):
        g = HostSwitchGraph(5, 3)
        g.add_switch_edge(0, 1)
        g.add_switch_edge(0, 2)
        g.add_switch_edge(0, 3)
        with pytest.raises(ValueError, match="no free port"):
            g.add_switch_edge(0, 4)

    def test_remove_edge(self):
        g = HostSwitchGraph(3, 4)
        g.add_switch_edge(0, 1)
        g.remove_switch_edge(1, 0)
        assert not g.has_switch_edge(0, 1)
        assert g.num_switch_edges == 0

    def test_remove_missing_edge_raises(self):
        g = HostSwitchGraph(3, 4)
        with pytest.raises(ValueError, match="does not exist"):
            g.remove_switch_edge(0, 1)

    def test_switch_edges_iterates_each_once(self):
        g = HostSwitchGraph(4, 4)
        g.add_switch_edge(0, 1)
        g.add_switch_edge(2, 1)
        g.add_switch_edge(3, 0)
        edges = sorted(g.switch_edges())
        assert edges == [(0, 1), (0, 3), (1, 2)]


class TestHosts:
    def test_attach_assigns_sequential_ids(self):
        g = HostSwitchGraph(2, 4)
        assert g.attach_host(0) == 0
        assert g.attach_host(1) == 1
        assert g.attach_host(0) == 2
        assert g.hosts_on(0) == 2
        assert g.host_attachment(2) == 0

    def test_radix_enforced_on_hosts(self):
        g = HostSwitchGraph(2, 3)
        g.add_switch_edge(0, 1)
        g.attach_host(0)
        g.attach_host(0)
        with pytest.raises(ValueError, match="no free port"):
            g.attach_host(0)

    def test_move_host_updates_counts(self):
        g = HostSwitchGraph(2, 4)
        h = g.attach_host(0)
        old = g.move_host(h, 1)
        assert old == 0
        assert g.hosts_on(0) == 0
        assert g.hosts_on(1) == 1
        g.validate()

    def test_move_host_to_same_switch_is_noop(self):
        g = HostSwitchGraph(2, 4)
        h = g.attach_host(0)
        assert g.move_host(h, 0) == 0
        assert g.hosts_on(0) == 1

    def test_move_any_host_picks_highest_id(self):
        g = HostSwitchGraph(2, 5)
        g.attach_host(0)
        g.attach_host(0)
        moved = g.move_any_host(0, 1)
        assert moved == 1  # deterministic: highest id on the source switch
        assert g.hosts_on(0) == 1 and g.hosts_on(1) == 1

    def test_move_any_host_from_empty_raises(self):
        g = HostSwitchGraph(2, 4)
        with pytest.raises(ValueError, match="no host"):
            g.move_any_host(0, 1)

    def test_hosts_of_switch(self):
        g = HostSwitchGraph(2, 6)
        g.attach_host(0)
        g.attach_host(1)
        g.attach_host(0)
        assert g.hosts_of_switch(0) == [0, 2]

    def test_free_ports_accounting(self):
        g = HostSwitchGraph(2, 4)
        g.add_switch_edge(0, 1)
        g.attach_host(0)
        assert g.free_ports(0) == 2
        assert g.ports_used(0) == 2


class TestConnectivityAndValidation:
    def test_connected_detection(self):
        g = HostSwitchGraph(3, 4)
        g.add_switch_edge(0, 1)
        assert not g.is_switch_graph_connected()
        g.add_switch_edge(1, 2)
        assert g.is_switch_graph_connected()

    def test_single_switch_is_connected(self):
        assert HostSwitchGraph(1, 4).is_switch_graph_connected()

    def test_validate_passes_on_good_graph(self, fig1_graph):
        fig1_graph.validate()

    def test_validate_catches_desync(self):
        g = HostSwitchGraph(2, 4)
        g.attach_host(0)
        g._hosts_per_switch[0] = 0  # corrupt internals deliberately
        with pytest.raises(ValueError, match="desynchronised"):
            g.validate()


class TestCopyAndExport:
    def test_copy_is_independent(self, fig1_graph):
        dup = fig1_graph.copy()
        assert dup == fig1_graph
        dup.remove_switch_edge(0, 1)
        assert not dup == fig1_graph
        assert fig1_graph.has_switch_edge(0, 1)

    def test_equality_semantics(self):
        a = HostSwitchGraph.from_edges(2, 4, [(0, 1)], [0])
        b = HostSwitchGraph.from_edges(2, 4, [(0, 1)], [0])
        c = HostSwitchGraph.from_edges(2, 4, [(0, 1)], [1])
        assert a == b
        assert a != c

    def test_switch_csr_matches_adjacency(self, fig1_graph):
        csr = fig1_graph.switch_csr()
        assert csr.shape == (4, 4)
        dense = csr.toarray()
        for a in range(4):
            for b in range(4):
                assert bool(dense[a, b]) == fig1_graph.has_switch_edge(a, b)

    def test_to_networkx_roundtrip_counts(self, fig1_graph):
        nxg = fig1_graph.to_networkx()
        hosts = [v for v, d in nxg.nodes(data=True) if d["kind"] == "host"]
        switches = [v for v, d in nxg.nodes(data=True) if d["kind"] == "switch"]
        assert len(hosts) == fig1_graph.num_hosts
        assert len(switches) == fig1_graph.num_switches
        assert nxg.number_of_edges() == fig1_graph.num_edges

    def test_host_counts_array(self, fig1_graph):
        counts = fig1_graph.host_counts()
        assert counts.tolist() == [4, 4, 4, 4]


class TestValidateDiagnostics:
    """validate() errors must name the offending switch and its budget."""

    def test_port_budget_message_names_switch_and_breakdown(self):
        g = HostSwitchGraph(num_switches=2, radix=3)
        g.add_switch_edge(0, 1)
        g.attach_host(0)
        g.attach_host(0)
        # Sneak a third host onto switch 0 past the mutation-time guard.
        g._host_switch.append(0)
        g._hosts_per_switch[0] += 1
        with pytest.raises(
            ValueError,
            match=r"switch 0 exceeds its port budget: 4 ports used "
            r"\(1 switch links \+ 3 hosts\) > radix 3",
        ):
            g.validate()

    def test_host_count_desync_message_names_switch_and_counts(self):
        g = HostSwitchGraph(num_switches=3, radix=4)
        g.attach_host(1)
        g._hosts_per_switch[1] = 0
        with pytest.raises(
            ValueError,
            match=r"desynchronised at switch 1: counter says 0, "
            r"attachment array has 1",
        ):
            g.validate()
