"""Tests for graph constructions (star, clique, regular, random, fills)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import (
    clique_host_switch_graph,
    fill_hosts_dfs,
    fill_hosts_sequentially,
    minimum_clique_switch_count,
    random_host_switch_graph,
    random_regular_host_switch_graph,
    random_regular_switch_topology,
    spread_hosts_evenly,
    star_host_switch_graph,
)
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import h_aspl


class TestStar:
    def test_star_h_aspl_is_two(self):
        g = star_host_switch_graph(6, 8)
        assert g.num_switches == 1
        assert h_aspl(g) == 2.0

    def test_star_requires_capacity(self):
        with pytest.raises(ValueError, match="n <= r"):
            star_host_switch_graph(9, 8)


class TestClique:
    def test_minimum_switch_count(self):
        # r=6: capacities m(7-m): 6, 10, 12, 12, 10, 6 -> n=11 needs m=3.
        assert minimum_clique_switch_count(6, 6) == 1
        assert minimum_clique_switch_count(7, 6) == 2
        assert minimum_clique_switch_count(11, 6) == 3

    def test_capacity_exceeded_raises(self):
        with pytest.raises(ValueError, match="no clique"):
            minimum_clique_switch_count(13, 6)  # max capacity is 12

    def test_clique_structure(self):
        g = clique_host_switch_graph(10, 6)
        m = g.num_switches
        assert g.num_switch_edges == m * (m - 1) // 2
        g.validate()
        assert g.num_hosts == 10

    def test_hosts_spread_evenly(self):
        g = clique_host_switch_graph(10, 6, m=3)
        counts = sorted(g.host_counts().tolist())
        assert counts == [3, 3, 4]

    def test_explicit_m_validated(self):
        with pytest.raises(ValueError, match="at most"):
            clique_host_switch_graph(50, 6, m=3)


class TestRegularTopology:
    def test_regular_topology_properties(self):
        edges = random_regular_switch_topology(10, 3, seed=0)
        degree = {}
        for a, b in edges:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        assert all(degree[v] == 3 for v in range(10))
        assert len(edges) == 15

    def test_odd_total_degree_rejected(self):
        with pytest.raises(ValueError, match="even"):
            random_regular_switch_topology(5, 3)

    def test_degree_bound(self):
        with pytest.raises(ValueError, match="must be <"):
            random_regular_switch_topology(4, 4)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_regular_host_switch_graph_is_regular(self, seed):
        g = random_regular_host_switch_graph(n=24, m=8, r=6, seed=seed)
        g.validate()
        assert all(g.hosts_on(s) == 3 for s in range(8))
        assert all(g.switch_degree(s) == 3 for s in range(8))
        assert g.is_switch_graph_connected()

    def test_divisibility_required(self):
        with pytest.raises(ValueError, match="m | n"):
            random_regular_host_switch_graph(n=25, m=8, r=6)

    def test_no_ports_left_raises(self):
        with pytest.raises(ValueError, match="no switch ports"):
            random_regular_host_switch_graph(n=24, m=4, r=6)


class TestRandomGraph:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_graph_valid_and_connected(self, seed):
        g = random_host_switch_graph(n=30, m=9, r=8, seed=seed)
        g.validate()
        assert g.num_hosts == 30
        assert g.is_switch_graph_connected()
        assert h_aspl(g) < float("inf")

    def test_infeasible_configuration_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            random_host_switch_graph(n=100, m=4, r=5)

    def test_deterministic_under_seed(self):
        a = random_host_switch_graph(20, 6, 8, seed=42)
        b = random_host_switch_graph(20, 6, 8, seed=42)
        assert a == b

    def test_without_fill_edges_is_tree(self):
        g = random_host_switch_graph(10, 5, 8, seed=1, fill_edges=False)
        assert g.num_switch_edges == 4  # spanning tree on 5 switches


class TestHostFills:
    def test_spread_evenly_balances(self):
        g = HostSwitchGraph(4, 6)
        for a in range(3):
            g.add_switch_edge(a, a + 1)
        spread_hosts_evenly(g, 10)
        counts = g.host_counts()
        assert counts.sum() == 10
        assert counts.max() - counts.min() <= 1 or g.free_ports(int(np.argmin(counts))) == 0

    def test_sequential_fill_packs_first_switches(self):
        g = HostSwitchGraph(3, 4)
        g.add_switch_edge(0, 1)
        g.add_switch_edge(1, 2)
        fill_hosts_sequentially(g, 5)
        # switch 0 has 3 free ports, switch 1 has 2.
        assert g.host_counts().tolist() == [3, 2, 0]

    def test_sequential_fill_capacity_error(self):
        g = HostSwitchGraph(1, 4)
        with pytest.raises(ValueError, match="not enough"):
            fill_hosts_sequentially(g, 5)

    def test_dfs_fill_follows_traversal(self):
        # Path 0-1-2 rooted at 0 fills 0, then 1, then 2.
        g = HostSwitchGraph(3, 4)
        g.add_switch_edge(0, 1)
        g.add_switch_edge(1, 2)
        fill_hosts_dfs(g, 6, root=0)
        assert g.host_counts().tolist() == [3, 2, 1]

    def test_dfs_fill_groups_neighbours(self):
        # Star: root 0 with leaves; DFS visits leaf subtrees consecutively.
        g = HostSwitchGraph(3, 6)
        g.add_switch_edge(0, 1)
        g.add_switch_edge(0, 2)
        fill_hosts_dfs(g, 12, root=0)
        assert g.host_counts().sum() == 12
        g.validate()
