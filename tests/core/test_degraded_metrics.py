"""Tests for reachability-aware degraded metrics (`repro.core.metrics`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construct import (
    clique_host_switch_graph,
    random_regular_host_switch_graph,
)
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import (
    degraded_metrics,
    degraded_metrics_from_distances,
    h_aspl,
    h_aspl_from_distances,
    switch_distance_matrix,
)


def two_islands(hosts_a: int = 4, hosts_b: int = 2) -> HostSwitchGraph:
    """Two disjoint single-switch islands with hosts_a / hosts_b hosts."""
    g = HostSwitchGraph(2, radix=max(hosts_a, hosts_b))
    for _ in range(hosts_a):
        g.attach_host(0)
    for _ in range(hosts_b):
        g.attach_host(1)
    return g


class TestConnected:
    def test_bit_identical_to_h_aspl(self, fig1_graph):
        metrics = degraded_metrics(fig1_graph)
        assert metrics.connected_h_aspl == h_aspl(fig1_graph)
        assert metrics.reachable_pair_fraction == 1.0
        assert metrics.num_components == 1
        assert metrics.component_hosts == (fig1_graph.num_hosts,)
        assert not metrics.is_partitioned
        assert metrics.largest_component_hosts == 16

    def test_bit_identical_across_random_graphs(self):
        for seed in range(5):
            g = random_regular_host_switch_graph(36, 12, 7, seed=seed)
            assert degraded_metrics(g).connected_h_aspl == h_aspl(g)

    def test_from_distances_matches_graph_version(self):
        g = clique_host_switch_graph(20, 8)
        dist = switch_distance_matrix(g)
        counts = g.host_counts().astype(np.float64)
        bearing = np.flatnonzero(counts > 0)
        sub = dist[np.ix_(bearing, bearing)]
        kb = counts[bearing]
        via_dist = degraded_metrics_from_distances(sub, kb, g.num_hosts)
        assert via_dist == degraded_metrics(g)
        assert via_dist.connected_h_aspl == h_aspl_from_distances(
            sub, kb, g.num_hosts
        )


class TestPartitioned:
    def test_two_islands_component_stats(self):
        metrics = degraded_metrics(two_islands(4, 2))
        assert metrics.is_partitioned
        assert metrics.num_components == 2
        assert metrics.component_hosts == (4, 2)
        assert metrics.largest_component_hosts == 4
        # Reachable pairs: C(4,2) + C(2,2) = 7 of C(6,2) = 15.
        assert metrics.reachable_pair_fraction == pytest.approx(7 / 15)
        # All reachable pairs are same-switch (distance 2).
        assert metrics.connected_h_aspl == pytest.approx(2.0)

    def test_no_reachable_pairs_is_inf(self):
        g = HostSwitchGraph(2, radix=2)
        g.attach_host(0)
        g.attach_host(1)
        metrics = degraded_metrics(g)
        assert metrics.connected_h_aspl == float("inf")
        assert metrics.reachable_pair_fraction == 0.0
        assert metrics.num_components == 2

    def test_partitioned_ring_reports_both_components(self, fig1_graph):
        g = fig1_graph.copy()
        # Cut the 4-ring twice: components {0, 1} and {2, 3}.
        g.remove_switch_edge(1, 2)
        g.remove_switch_edge(3, 0)
        metrics = degraded_metrics(g)
        assert metrics.num_components == 2
        assert metrics.component_hosts == (8, 8)
        # 2 * C(8,2) = 56 of C(16,2) = 120 pairs survive.
        assert metrics.reachable_pair_fraction == pytest.approx(56 / 120)
        assert np.isfinite(metrics.connected_h_aspl)

    def test_validation(self):
        g = HostSwitchGraph(1, radix=2)
        g.attach_host(0)
        with pytest.raises(ValueError, match="at least 2 hosts"):
            degraded_metrics(g)
        with pytest.raises(ValueError, match="at least 2 hosts"):
            degraded_metrics_from_distances(np.zeros((1, 1)), np.ones(1), 1)
