"""Tests for the simulated-annealing ORP search."""

from __future__ import annotations

import pytest

from repro.core.annealing import AnnealingResult, AnnealingSchedule, anneal
from repro.core.annealing import _EdgeList
from repro.core.bounds import h_aspl_lower_bound
from repro.core.construct import (
    random_host_switch_graph,
    random_regular_host_switch_graph,
)
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import h_aspl
from repro.core.operations import SwapMove, SwingMove


class TestSchedule:
    def test_endpoints(self):
        s = AnnealingSchedule(num_steps=100, initial_temperature=0.1, final_temperature=0.001)
        assert s.temperature(0) == pytest.approx(0.1)
        assert s.temperature(99) == pytest.approx(0.001)

    def test_monotone_decrease(self):
        s = AnnealingSchedule(num_steps=50)
        temps = [s.temperature(i) for i in range(50)]
        assert all(a >= b for a, b in zip(temps, temps[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(num_steps=0)
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=0.01, final_temperature=0.1)

    def test_single_step(self):
        s = AnnealingSchedule(num_steps=1, initial_temperature=0.2)
        assert s.temperature(0) == 0.2


class TestEdgeList:
    def test_tracks_graph_edges(self):
        g = random_host_switch_graph(12, 5, 6, seed=0)
        el = _EdgeList(g)
        assert sorted(el.edges) == sorted(tuple(sorted(e)) for e in g.switch_edges())

    def test_add_remove_roundtrip(self):
        g = HostSwitchGraph.from_edges(4, 4, [(0, 1), (2, 3)], [0, 1, 2, 3])
        el = _EdgeList(g)
        el.remove(1, 0)
        el.add(1, 2)
        assert sorted(el.edges) == [(1, 2), (2, 3)]

    def test_apply_swap_and_swing_sync(self):
        g = HostSwitchGraph.from_edges(4, 6, [(0, 1), (2, 3)], [0, 1, 2, 3])
        el = _EdgeList(g)
        swap = SwapMove(0, 1, 2, 3)
        swap.apply(g)
        el.apply_swap(swap)
        assert sorted(el.edges) == sorted(tuple(sorted(e)) for e in g.switch_edges())
        swing = SwingMove(0, 3, 1)
        assert swing.is_legal(g)
        swing.apply(g)
        el.apply_swing(swing)
        assert sorted(el.edges) == sorted(tuple(sorted(e)) for e in g.switch_edges())


class TestAnneal:
    @pytest.mark.parametrize("operation", ["swap", "swing", "two-neighbor-swing"])
    def test_never_worse_than_start(self, operation):
        g = random_host_switch_graph(24, 8, 7, seed=1)
        start = h_aspl(g)
        result = anneal(
            g,
            operation=operation,
            schedule=AnnealingSchedule(num_steps=300),
            seed=2,
        )
        assert result.h_aspl <= start + 1e-12
        assert result.h_aspl >= h_aspl_lower_bound(24, 7) - 1e-12
        result.graph.validate()

    def test_input_graph_not_mutated(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        before = g.copy()
        anneal(g, schedule=AnnealingSchedule(num_steps=100), seed=0)
        assert g == before

    def test_deterministic_under_seed(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        r1 = anneal(g, schedule=AnnealingSchedule(num_steps=200), seed=11)
        r2 = anneal(g, schedule=AnnealingSchedule(num_steps=200), seed=11)
        assert r1.h_aspl == r2.h_aspl
        assert r1.graph == r2.graph

    def test_swap_preserves_regularity(self):
        g = random_regular_host_switch_graph(24, 8, 6, seed=5)
        result = anneal(
            g, operation="swap", schedule=AnnealingSchedule(num_steps=300), seed=6
        )
        out = result.graph
        assert all(out.hosts_on(s) == 3 for s in range(8))
        assert all(out.switch_degree(s) == 3 for s in range(8))

    def test_two_neighbor_swing_can_change_host_counts(self):
        g = random_host_switch_graph(30, 10, 6, seed=7)
        start_counts = sorted(g.host_counts().tolist())
        result = anneal(
            g, schedule=AnnealingSchedule(num_steps=600, initial_temperature=0.1), seed=8
        )
        # With hosts initially even, a meaningful search at this radix
        # virtually always ends with a different distribution; tolerate the
        # rare identical outcome but require a strict improvement then.
        end_counts = sorted(result.graph.host_counts().tolist())
        assert end_counts != start_counts or result.h_aspl < h_aspl(g)

    def test_history_recording(self):
        g = random_host_switch_graph(20, 6, 8, seed=9)
        result = anneal(
            g, schedule=AnnealingSchedule(num_steps=100), seed=1, history_every=10
        )
        # Ticks at 0, 10, ..., 90 plus the always-recorded terminal step 99.
        assert len(result.history) == 11
        steps = [h[0] for h in result.history]
        assert steps == sorted(steps)
        assert steps[-1] == result.steps - 1
        bests = [h[2] for h in result.history]
        assert all(a >= b for a, b in zip(bests, bests[1:]))

    def test_history_terminal_sample_on_target_break(self):
        g = random_host_switch_graph(10, 3, 8, seed=10)
        bound = h_aspl_lower_bound(10, 8)
        result = anneal(
            g,
            schedule=AnnealingSchedule(num_steps=5000),
            seed=2,
            target=bound,
            history_every=1000,
        )
        assert result.history[-1][0] == result.steps - 1
        assert result.history[-1][2] == result.h_aspl

    def test_history_not_duplicated_when_last_step_is_a_tick(self):
        g = random_host_switch_graph(20, 6, 8, seed=9)
        # 100 steps, every 99 -> ticks at 0 and 99; terminal step 99 must
        # not be appended twice.
        result = anneal(
            g, schedule=AnnealingSchedule(num_steps=100), seed=1, history_every=99
        )
        steps = [h[0] for h in result.history]
        assert steps == [0, 99]

    def test_target_early_stop(self):
        # Clique-capable instance reaches its bound quickly.
        g = random_host_switch_graph(10, 3, 8, seed=10)
        bound = h_aspl_lower_bound(10, 8)
        result = anneal(
            g, schedule=AnnealingSchedule(num_steps=5000), seed=2, target=bound
        )
        if result.h_aspl <= bound + 1e-12:
            assert result.steps <= 5000

    def test_unknown_operation_rejected(self):
        g = random_host_switch_graph(10, 3, 8, seed=0)
        with pytest.raises(ValueError, match="operation"):
            anneal(g, operation="teleport")

    def test_disconnected_start_rejected(self):
        g = HostSwitchGraph.from_edges(2, 4, [], [0, 1])
        with pytest.raises(ValueError, match="disconnected"):
            anneal(g)

    def test_result_counters_consistent(self):
        g = random_host_switch_graph(20, 6, 8, seed=12)
        result = anneal(g, schedule=AnnealingSchedule(num_steps=200), seed=3)
        assert isinstance(result, AnnealingResult)
        assert 0 <= result.improved <= result.accepted <= result.steps
        assert result.initial_h_aspl >= result.h_aspl

    def test_unknown_evaluator_rejected(self):
        g = random_host_switch_graph(10, 3, 8, seed=0)
        with pytest.raises(ValueError, match="evaluator"):
            anneal(g, evaluator="psychic")


class TestEvaluatorEquivalence:
    """The incremental and full evaluators must anneal bit-identically.

    Every quantity both evaluators sum is an integer exactly representable
    in float64, so the evaluators return *equal* floats, consume the same
    Metropolis draws, and walk the same trajectory.
    """

    @pytest.mark.parametrize("operation", ["swap", "swing", "two-neighbor-swing"])
    def test_bit_identical_runs(self, operation):
        g = random_host_switch_graph(48, 14, 6, seed=4)
        schedule = AnnealingSchedule(num_steps=500)
        inc = anneal(
            g, operation=operation, schedule=schedule, seed=21, history_every=13
        )
        full = anneal(
            g,
            operation=operation,
            schedule=schedule,
            seed=21,
            history_every=13,
            evaluator="full",
        )
        assert inc.h_aspl == full.h_aspl
        assert inc.diameter == full.diameter
        assert inc.accepted == full.accepted
        assert inc.improved == full.improved
        assert inc.graph == full.graph
        assert inc.history == full.history

    def test_bit_identical_with_hostless_switches(self):
        # More switch capacity than hosts: hostless switches force the
        # whole-graph connectivity check and the two-neighbor direct-swap
        # fallback into play.
        g = random_host_switch_graph(18, 20, 5, seed=6)
        assert (g.host_counts() == 0).any()
        schedule = AnnealingSchedule(num_steps=400)
        inc = anneal(g, schedule=schedule, seed=9)
        full = anneal(g, schedule=schedule, seed=9, evaluator="full")
        assert inc.h_aspl == full.h_aspl
        assert inc.diameter == full.diameter
        assert inc.accepted == full.accepted
        assert inc.graph == full.graph
