"""Tests for the Order/Degree Problem solver (GraphGolf-style extension)."""

from __future__ import annotations

import pytest

from repro.core.annealing import AnnealingSchedule
from repro.core.odp import ODPSolution, odp_aspl_lower_bound, solve_odp


class TestSolveODP:
    def test_complete_graph_regime(self):
        # n=6, d=5: the only 5-regular graph on 6 vertices is K6 (ASPL 1).
        sol = solve_odp(6, 5, schedule=AnnealingSchedule(num_steps=50), seed=0)
        assert sol.aspl == pytest.approx(1.0)
        assert sol.diameter == 1

    def test_petersen_parameters_reach_moore_bound(self):
        # (10, 3) admits the Petersen graph, which meets the Moore bound
        # ASPL 5/3; a modest SA budget finds it (or an equal-ASPL graph).
        sol = solve_odp(
            10, 3, schedule=AnnealingSchedule(num_steps=3_000), restarts=3, seed=1
        )
        assert sol.aspl == pytest.approx(5 / 3, abs=0.08)
        assert sol.aspl >= odp_aspl_lower_bound(10, 3) - 1e-12

    def test_output_is_regular_graph(self):
        sol = solve_odp(16, 4, schedule=AnnealingSchedule(num_steps=300), seed=2)
        degree = {}
        for a, b in sol.edges:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        assert all(degree[v] == 4 for v in range(16))
        assert len(sol.edges) == 16 * 4 // 2

    def test_beats_random_start(self):
        from repro.core.construct import random_regular_switch_topology
        from repro.core.hostswitch import HostSwitchGraph
        from repro.core.metrics import switch_aspl

        edges = random_regular_switch_topology(24, 3, seed=3)
        g = HostSwitchGraph(24, 4)
        for a, b in edges:
            g.add_switch_edge(a, b)
        start_aspl = switch_aspl(g)
        sol = solve_odp(24, 3, schedule=AnnealingSchedule(num_steps=1_500), seed=3)
        assert sol.aspl <= start_aspl + 1e-9

    def test_gap_and_summary(self):
        sol = solve_odp(16, 4, schedule=AnnealingSchedule(num_steps=200), seed=4)
        assert sol.gap >= -1e-12
        text = sol.summary()
        assert "ODP(n=16, d=4)" in text and "ASPL" in text

    def test_invalid_degree(self):
        with pytest.raises(ValueError, match="must be <"):
            solve_odp(8, 8)

    def test_deterministic_under_seed(self):
        a = solve_odp(16, 4, schedule=AnnealingSchedule(num_steps=200), seed=7)
        b = solve_odp(16, 4, schedule=AnnealingSchedule(num_steps=200), seed=7)
        assert a.aspl == b.aspl
        assert a.edges == b.edges

    def test_embedding_identity(self):
        # h-ASPL of the embedding equals ODP ASPL + 2 (Formula 1 at n = m).
        sol = solve_odp(12, 3, schedule=AnnealingSchedule(num_steps=200), seed=8)
        assert sol.annealing.h_aspl == pytest.approx(sol.aspl + 2.0)
