"""Tests for Theorem 1, Theorem 2, and the Moore bounds."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    diameter_lower_bound,
    h_aspl_lower_bound,
    moore_aspl_lower_bound,
    moore_reachable,
    regular_h_aspl_lower_bound,
)
from repro.core.construct import clique_host_switch_graph, star_host_switch_graph
from repro.core.metrics import h_aspl, h_aspl_and_diameter


class TestDiameterLowerBound:
    def test_paper_instance(self):
        # n=1024, r=24: (23)^2 = 529 < 1023 <= 23^3, so D- = 4.
        assert diameter_lower_bound(1024, 24) == 4

    def test_single_switch_regime(self):
        # n <= r: two edges suffice (h - s - h).
        assert diameter_lower_bound(8, 8) == 2
        assert diameter_lower_bound(3, 24) == 2

    def test_boundary_exact_power(self):
        # n - 1 = (r-1)^(D-1) exactly.
        r = 5
        assert diameter_lower_bound((r - 1) ** 2 + 1, r) == 3
        assert diameter_lower_bound((r - 1) ** 2 + 2, r) == 4

    def test_matches_log_formula(self):
        for n in [10, 100, 1000, 4097]:
            for r in [3, 8, 16]:
                expected = math.ceil(math.log(n - 1, r - 1)) + 1
                got = diameter_lower_bound(n, r)
                # The integer loop is authoritative; the float formula can
                # be off by one at exact powers, so allow that slack only
                # when floating-point rounding bites.
                assert abs(got - expected) <= 1
                assert (r - 1) ** (got - 1) >= n - 1
                assert got == 2 or (r - 1) ** (got - 2) < n - 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            diameter_lower_bound(1, 4)
        with pytest.raises(ValueError):
            diameter_lower_bound(10, 2)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 10**6), st.integers(3, 64))
    def test_defining_inequality(self, n, r):
        d = diameter_lower_bound(n, r)
        assert (r - 1) ** (d - 1) >= n - 1
        if d > 2:
            assert (r - 1) ** (d - 2) < n - 1


class TestMooreBound:
    def test_reachable_counting(self):
        # degree 3: 1 + 3 + 6 + 12 ...
        assert moore_reachable(3, 0) == 1
        assert moore_reachable(3, 1) == 4
        assert moore_reachable(3, 2) == 10
        assert moore_reachable(3, 3) == 22

    def test_complete_graph_aspl_is_one(self):
        assert moore_aspl_lower_bound(5, 4) == 1.0

    def test_petersen_parameters(self):
        # Petersen graph: 10 vertices, 3-regular, achieves the Moore bound
        # ASPL = (3*1 + 6*2) / 9 = 5/3.
        assert moore_aspl_lower_bound(10, 3) == pytest.approx(5 / 3)

    def test_single_vertex(self):
        assert moore_aspl_lower_bound(1, 0) == 0.0

    def test_infeasible_degree(self):
        assert moore_aspl_lower_bound(5, 1) == float("inf")
        assert moore_aspl_lower_bound(10, 0) == float("inf")

    def test_degree_two_is_path_like(self):
        # Ring of 7: layers of 2 at distances 1,2,3 -> (2+4+6)/6 = 2.
        assert moore_aspl_lower_bound(7, 2) == pytest.approx(2.0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 500), st.integers(2, 20))
    def test_monotone_in_degree(self, n, k):
        # More ports can only lower the bound.
        assert moore_aspl_lower_bound(n, k + 1) <= moore_aspl_lower_bound(n, k)


class TestHAsplLowerBound:
    def test_star_regime_bound_is_two_and_tight(self):
        for n in (3, 5, 8):
            assert h_aspl_lower_bound(n, 8) == pytest.approx(2.0)
            g = star_host_switch_graph(n, 8)
            assert h_aspl(g) == pytest.approx(2.0)

    def test_exact_power_case(self):
        # n = (r-1)^(D-1)+1 -> bound exactly D.
        r = 4
        n = (r - 1) ** 2 + 1  # 10
        assert h_aspl_lower_bound(n, r) == pytest.approx(3.0)

    def test_paper_1024_24(self):
        bound = h_aspl_lower_bound(1024, 24)
        assert 3.0 < bound < 4.0  # between diameters 3 and 4

    def test_bound_below_clique_construction(self):
        # The clique host-switch graph is optimal in its regime (Theorem 3),
        # so the Theorem-2 bound must sit at or below its h-ASPL.
        for n, r in [(20, 8), (40, 12), (72, 16)]:
            g = clique_host_switch_graph(n, r)
            assert h_aspl_lower_bound(n, r) <= h_aspl(g) + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.integers(3, 100_000), st.integers(3, 48))
    def test_bound_sandwiched_by_diameter_bound(self, n, r):
        a = h_aspl_lower_bound(n, r)
        d = diameter_lower_bound(n, r)
        assert a <= d + 1e-12
        assert a >= d - 1.0  # alpha/(n-1) < 1 by construction... see note
        assert a >= 2.0


class TestRegularBound:
    def test_requires_divisibility(self):
        with pytest.raises(ValueError, match="m | n"):
            regular_h_aspl_lower_bound(10, 3, 8)

    def test_single_switch(self):
        assert regular_h_aspl_lower_bound(4, 1, 8) == 2.0
        assert regular_h_aspl_lower_bound(9, 1, 8) == float("inf")

    def test_infeasible_when_hosts_exhaust_ports(self):
        assert regular_h_aspl_lower_bound(32, 4, 8) == float("inf")

    def test_formula2_value(self):
        # m=4, n=8, r=5: 2 hosts/switch, degree 3 -> complete K4, M=1.
        # bound = 1 * (32-8)/(32-4) + 2 = 24/28 + 2.
        expected = 24 / 28 + 2
        assert regular_h_aspl_lower_bound(8, 4, 5) == pytest.approx(expected)

    def test_achieved_by_clique(self):
        # A clique host-switch graph with even spread achieves Formula (2)
        # when the switch graph is complete.
        g = clique_host_switch_graph(8, 5, m=4)
        assert h_aspl(g) == pytest.approx(regular_h_aspl_lower_bound(8, 4, 5))
