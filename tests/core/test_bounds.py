"""Tests for Theorem 1, Theorem 2, and the Moore bounds."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    diameter_lower_bound,
    h_aspl_lower_bound,
    lacin_h_aspl_baseline,
    lacin_max_hosts,
    lacin_switch_count,
    moore_aspl_lower_bound,
    moore_reachable,
    regular_h_aspl_lower_bound,
    shimizu_mori_aspl_lower_bound,
    shimizu_mori_h_aspl_lower_bound,
)
from repro.core.construct import clique_host_switch_graph, star_host_switch_graph
from repro.core.metrics import h_aspl, h_aspl_and_diameter, switch_aspl


class TestDiameterLowerBound:
    def test_paper_instance(self):
        # n=1024, r=24: (23)^2 = 529 < 1023 <= 23^3, so D- = 4.
        assert diameter_lower_bound(1024, 24) == 4

    def test_single_switch_regime(self):
        # n <= r: two edges suffice (h - s - h).
        assert diameter_lower_bound(8, 8) == 2
        assert diameter_lower_bound(3, 24) == 2

    def test_boundary_exact_power(self):
        # n - 1 = (r-1)^(D-1) exactly.
        r = 5
        assert diameter_lower_bound((r - 1) ** 2 + 1, r) == 3
        assert diameter_lower_bound((r - 1) ** 2 + 2, r) == 4

    def test_matches_log_formula(self):
        for n in [10, 100, 1000, 4097]:
            for r in [3, 8, 16]:
                expected = math.ceil(math.log(n - 1, r - 1)) + 1
                got = diameter_lower_bound(n, r)
                # The integer loop is authoritative; the float formula can
                # be off by one at exact powers, so allow that slack only
                # when floating-point rounding bites.
                assert abs(got - expected) <= 1
                assert (r - 1) ** (got - 1) >= n - 1
                assert got == 2 or (r - 1) ** (got - 2) < n - 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            diameter_lower_bound(1, 4)
        with pytest.raises(ValueError):
            diameter_lower_bound(10, 2)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 10**6), st.integers(3, 64))
    def test_defining_inequality(self, n, r):
        d = diameter_lower_bound(n, r)
        assert (r - 1) ** (d - 1) >= n - 1
        if d > 2:
            assert (r - 1) ** (d - 2) < n - 1


class TestMooreBound:
    def test_reachable_counting(self):
        # degree 3: 1 + 3 + 6 + 12 ...
        assert moore_reachable(3, 0) == 1
        assert moore_reachable(3, 1) == 4
        assert moore_reachable(3, 2) == 10
        assert moore_reachable(3, 3) == 22

    def test_complete_graph_aspl_is_one(self):
        assert moore_aspl_lower_bound(5, 4) == 1.0

    def test_petersen_parameters(self):
        # Petersen graph: 10 vertices, 3-regular, achieves the Moore bound
        # ASPL = (3*1 + 6*2) / 9 = 5/3.
        assert moore_aspl_lower_bound(10, 3) == pytest.approx(5 / 3)

    def test_single_vertex(self):
        assert moore_aspl_lower_bound(1, 0) == 0.0

    def test_infeasible_degree(self):
        assert moore_aspl_lower_bound(5, 1) == float("inf")
        assert moore_aspl_lower_bound(10, 0) == float("inf")

    def test_degree_two_is_path_like(self):
        # Ring of 7: layers of 2 at distances 1,2,3 -> (2+4+6)/6 = 2.
        assert moore_aspl_lower_bound(7, 2) == pytest.approx(2.0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 500), st.integers(2, 20))
    def test_monotone_in_degree(self, n, k):
        # More ports can only lower the bound.
        assert moore_aspl_lower_bound(n, k + 1) <= moore_aspl_lower_bound(n, k)


class TestHAsplLowerBound:
    def test_star_regime_bound_is_two_and_tight(self):
        for n in (3, 5, 8):
            assert h_aspl_lower_bound(n, 8) == pytest.approx(2.0)
            g = star_host_switch_graph(n, 8)
            assert h_aspl(g) == pytest.approx(2.0)

    def test_exact_power_case(self):
        # n = (r-1)^(D-1)+1 -> bound exactly D.
        r = 4
        n = (r - 1) ** 2 + 1  # 10
        assert h_aspl_lower_bound(n, r) == pytest.approx(3.0)

    def test_paper_1024_24(self):
        bound = h_aspl_lower_bound(1024, 24)
        assert 3.0 < bound < 4.0  # between diameters 3 and 4

    def test_bound_below_clique_construction(self):
        # The clique host-switch graph is optimal in its regime (Theorem 3),
        # so the Theorem-2 bound must sit at or below its h-ASPL.
        for n, r in [(20, 8), (40, 12), (72, 16)]:
            g = clique_host_switch_graph(n, r)
            assert h_aspl_lower_bound(n, r) <= h_aspl(g) + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.integers(3, 100_000), st.integers(3, 48))
    def test_bound_sandwiched_by_diameter_bound(self, n, r):
        a = h_aspl_lower_bound(n, r)
        d = diameter_lower_bound(n, r)
        assert a <= d + 1e-12
        assert a >= d - 1.0  # alpha/(n-1) < 1 by construction... see note
        assert a >= 2.0


class TestRegularBound:
    def test_requires_divisibility(self):
        with pytest.raises(ValueError, match="m | n"):
            regular_h_aspl_lower_bound(10, 3, 8)

    def test_single_switch(self):
        assert regular_h_aspl_lower_bound(4, 1, 8) == 2.0
        assert regular_h_aspl_lower_bound(9, 1, 8) == float("inf")

    def test_infeasible_when_hosts_exhaust_ports(self):
        assert regular_h_aspl_lower_bound(32, 4, 8) == float("inf")

    def test_formula2_value(self):
        # m=4, n=8, r=5: 2 hosts/switch, degree 3 -> complete K4, M=1.
        # bound = 1 * (32-8)/(32-4) + 2 = 24/28 + 2.
        expected = 24 / 28 + 2
        assert regular_h_aspl_lower_bound(8, 4, 5) == pytest.approx(expected)

    def test_achieved_by_clique(self):
        # A clique host-switch graph with even spread achieves Formula (2)
        # when the switch graph is complete.
        g = clique_host_switch_graph(8, 5, m=4)
        assert h_aspl(g) == pytest.approx(regular_h_aspl_lower_bound(8, 4, 5))


class TestDegenerateInputs:
    """Degenerate and extreme inputs of the Theorem-1/2 bounds."""

    def test_n_two_diameter_is_host_switch_host(self):
        # Two hosts can share one switch: distance exactly 2 at any radix.
        for r in (3, 8, 64):
            assert diameter_lower_bound(2, r) == 2

    def test_n_two_h_aspl_is_two(self):
        for r in (3, 8, 64):
            assert h_aspl_lower_bound(2, r) == 2.0

    def test_radix_two_rejected(self):
        with pytest.raises(ValueError):
            diameter_lower_bound(100, 2)
        with pytest.raises(ValueError):
            h_aspl_lower_bound(100, 2)

    def test_huge_n_integer_exact(self):
        # 10^15 sits beyond float64 log precision; the integer loop must
        # place the power boundary exactly: 10^15 = (11-1)^15, so
        # n - 1 = 10^15 needs depth 16 and n - 1 = 10^15 + 1 needs 17.
        assert diameter_lower_bound(10**15 + 1, 11) == 16
        assert diameter_lower_bound(10**15 + 2, 11) == 17

    def test_million_host_bounds_finite(self):
        d = diameter_lower_bound(10**6, 64)
        a = h_aspl_lower_bound(10**6, 64)
        assert d >= 3 and 2.0 <= a <= d

    def test_h_aspl_bound_monotone_in_n(self):
        # More hosts at fixed radix can never lower the bound.
        r = 16
        values = [h_aspl_lower_bound(n, r) for n in range(2, 4000, 37)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_h_aspl_bound_monotone_in_r(self):
        # More ports at fixed n can never raise the bound.
        n = 5000
        values = [h_aspl_lower_bound(n, r) for r in range(3, 128)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))


class TestShimizuMoriBound:
    def test_matches_moore_in_three_layer_window(self):
        # Inside K^2 + 1 < N <= moore_reachable(K, 3) with N*K even, the
        # three-layer fill is the whole Moore fill: exact coincidence.
        for n, k in [(500, 10), (79, 8), (300, 12), (28, 5)]:
            assert k * k + 1 < n <= moore_reachable(k, 3) and (n * k) % 2 == 0
            assert shimizu_mori_aspl_lower_bound(n, k) == moore_aspl_lower_bound(n, k)

    def test_sharper_than_moore_on_odd_parity(self):
        # With N*K odd the global floor(NK/2) edge count bites, so the
        # bound is strictly sharper than the per-vertex Moore fill.
        assert shimizu_mori_aspl_lower_bound(27, 5) > moore_aspl_lower_bound(27, 5)

    def test_weaker_than_moore_beyond_window(self):
        # Past the three-layer ball the closed form is valid but weaker.
        for k in (3, 6, 10):
            n = moore_reachable(k, 3) + 10
            n += (n * k) % 2  # keep parity even so only the window matters
            assert (
                shimizu_mori_aspl_lower_bound(n, k)
                <= moore_aspl_lower_bound(n, k) + 1e-12
            )

    def test_closed_form_in_window(self):
        # In the diameter-3 window the integer path equals 3 - K(K+1)/(N-1)
        # when N*K is even (no floor slack).
        n, k = 500, 10
        assert shimizu_mori_aspl_lower_bound(n, k) == pytest.approx(
            3 - k * (k + 1) / (n - 1)
        )

    def test_monotone_decreasing_in_degree(self):
        # Monotonicity is what makes passing a max degree safe on
        # irregular graphs.
        values = [shimizu_mori_aspl_lower_bound(2000, k) for k in range(1, 60)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_fractional_degree_between_integers(self):
        lo = shimizu_mori_aspl_lower_bound(1000, 9)
        mid = shimizu_mori_aspl_lower_bound(1000, 8.5)
        hi = shimizu_mori_aspl_lower_bound(1000, 8)
        assert lo <= mid <= hi

    def test_below_measured_switch_aspl(self):
        # Valid lower bound: never above a real graph's switch ASPL.
        g = clique_host_switch_graph(24, 9)  # complete K4, 3-regular
        assert shimizu_mori_aspl_lower_bound(
            g.num_switches, 3
        ) <= switch_aspl(g) + 1e-12

    def test_host_level_transfer_below_measured(self):
        # Regular fabric: clique block 24 hosts at r_b = 9 gives m = 4
        # switches, 6 hosts each; host-level SM bound <= measured h-ASPL.
        g = clique_host_switch_graph(24, 9)
        bound = shimizu_mori_h_aspl_lower_bound(24, g.num_switches, 9)
        assert bound <= h_aspl(g) + 1e-9

    def test_degenerate(self):
        assert shimizu_mori_aspl_lower_bound(1, 3) == 0.0
        assert shimizu_mori_aspl_lower_bound(10, 0) == float("inf")
        assert shimizu_mori_h_aspl_lower_bound(4, 1, 8) == 2.0
        assert shimizu_mori_h_aspl_lower_bound(9, 1, 8) == float("inf")
        with pytest.raises(ValueError):
            shimizu_mori_aspl_lower_bound(0, 3)


class TestLacinBaseline:
    def test_bit_identical_to_clique_measurement(self):
        # The closed form reproduces the measured h-ASPL of the balanced
        # clique construction exactly (single correctly-rounded division).
        for n, r in [(12, 6), (10, 6), (37, 12), (100, 20), (5, 8), (2, 3)]:
            assert lacin_h_aspl_baseline(n, r) == h_aspl(
                clique_host_switch_graph(n, r)
            )

    def test_infeasible_is_inf(self):
        assert lacin_h_aspl_baseline(79, 8) == float("inf")
        assert lacin_switch_count(79, 8) is None

    def test_switch_count_matches_capacity(self):
        for n, r in [(12, 6), (100, 20), (2, 3)]:
            m = lacin_switch_count(n, r)
            assert m is not None
            assert m * (r - m + 1) >= n
            assert m == 1 or (m - 1) * (r - m + 2) < n

    def test_max_hosts_is_capacity_peak(self):
        for r in range(3, 40):
            cap = lacin_max_hosts(r)
            assert lacin_switch_count(cap, r) is not None
            assert lacin_switch_count(cap + 1, r) is None

    def test_upper_yardstick_above_theorem2(self):
        # Achievable baseline sits at or above the Theorem-2 lower bound.
        for n, r in [(12, 6), (37, 12), (100, 20)]:
            assert lacin_h_aspl_baseline(n, r) >= h_aspl_lower_bound(n, r) - 1e-12
