"""Tests for the continuous Moore bound and the m_opt predictor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import regular_h_aspl_lower_bound
from repro.core.moore import (
    continuous_moore_aspl,
    continuous_moore_bound,
    moore_bound_series,
    optimal_switch_count,
)


class TestContinuousMooreAspl:
    def test_matches_integer_moore_at_integer_degree(self):
        from repro.core.bounds import moore_aspl_lower_bound

        for n in (10, 50, 200):
            for k in (3, 5, 10):
                assert continuous_moore_aspl(n, float(k)) == pytest.approx(
                    moore_aspl_lower_bound(n, k)
                )

    def test_fractional_degree_interpolates(self):
        lo = continuous_moore_aspl(100, 4.0)
        mid = continuous_moore_aspl(100, 4.5)
        hi = continuous_moore_aspl(100, 5.0)
        assert hi <= mid <= lo

    def test_degree_below_two_limited_coverage(self):
        # K < 2 covers K/(2-K) vertices; beyond that -> inf.
        assert continuous_moore_aspl(3, 1.5) < float("inf")  # covers 3
        assert continuous_moore_aspl(50, 1.5) == float("inf")

    def test_zero_or_negative_degree(self):
        assert continuous_moore_aspl(10, 0.0) == float("inf")
        assert continuous_moore_aspl(10, -1.0) == float("inf")

    def test_single_vertex_is_zero(self):
        assert continuous_moore_aspl(1, 0.5) == 0.0


class TestContinuousMooreBound:
    def test_matches_formula2_when_divisible(self):
        # At m | n the continuous bound equals Formula (2) exactly.
        for n, m, r in [(24, 8, 6), (128, 16, 12), (1024, 256, 24)]:
            assert continuous_moore_bound(n, m, r) == pytest.approx(
                regular_h_aspl_lower_bound(n, m, r)
            )

    def test_single_switch(self):
        assert continuous_moore_bound(8, 1, 8) == 2.0
        assert continuous_moore_bound(9, 1, 8) == float("inf")

    def test_overloaded_switches_infeasible(self):
        # n/m >= r leaves no switch ports.
        assert continuous_moore_bound(100, 5, 10) == float("inf")

    def test_u_shape_around_minimum(self):
        # For the paper's (1024, 24): decreasing then increasing around m_opt.
        m_opt, best = optimal_switch_count(1024, 24)
        below = continuous_moore_bound(1024, max(2, m_opt // 2), 24)
        above = continuous_moore_bound(1024, min(1024, m_opt * 3), 24)
        assert best < below
        assert best < above


class TestOptimalSwitchCount:
    def test_paper_values(self):
        # Cross-checked against the paper's Section 6 instances:
        # r=15 -> paper 194 (ours 195: tie-breaking at the flat minimum),
        # r=16 -> paper 183 (exact match), (128, 24) -> 8 (clique regime).
        assert optimal_switch_count(1024, 16)[0] == 183
        assert abs(optimal_switch_count(1024, 15)[0] - 194) <= 1
        assert optimal_switch_count(128, 24)[0] == 8

    def test_trivial_star_regime(self):
        m, bound = optimal_switch_count(8, 16)
        assert m == 1
        assert bound == 2.0

    def test_respects_m_max(self):
        m, _ = optimal_switch_count(1024, 24, m_max=50)
        assert m <= 50

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="no feasible"):
            optimal_switch_count(10**6, 3, m_max=3)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(16, 2000), st.integers(6, 36))
    def test_minimiser_is_global_over_scan(self, n, r):
        m_opt, best = optimal_switch_count(n, r)
        for m in range(1, min(n, 300) + 1):
            assert continuous_moore_bound(n, m, r) >= best - 1e-12


class TestSeries:
    def test_series_marks_divisible_points(self):
        rows = moore_bound_series(128, 12, range(2, 66))
        for m, cont, disc in rows:
            if 128 % m == 0:
                assert disc is not None
                assert disc == pytest.approx(continuous_moore_bound(128, m, 12))
            else:
                assert disc is None
