"""Property suite: every kernel backend is bit-identical to the oracle.

The pure-Python dense-matmul backend is the reference; the bitset (and,
when installed, numba) backends must reproduce its distances **bit for
bit** on hundreds of adversarial random graphs — hostless switches,
disconnected components, post-fault partitioned fabrics — for full
APSP, targeted block extraction, single-row repair, and the
:class:`repro.core.incremental.DynamicDistanceMatrix` mutation paths.
Distances are small integers (exact in float64), so bit-identity is a
meaningful and achievable bar, and it is what makes the campaign
digests' backend-neutrality sound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construct import random_host_switch_graph
from repro.core.incremental import DynamicDistanceMatrix, IncrementalEvaluator
from repro.core.kernels import (
    BACKEND_ENV,
    CSRAdjacency,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from repro.core.metrics import h_aspl, switch_distance_matrix
from repro.core.operations import propose_swap, propose_swing

#: Backends under test beyond the oracle (numba joins when importable).
FAST_BACKENDS = [name for name in available_backends() if name != "python"]


def _random_csr(rng: np.random.Generator) -> tuple[int, CSRAdjacency]:
    """A random switch graph as CSR: ragged degrees, often disconnected."""
    m = int(rng.integers(1, 90))
    style = rng.random()
    if style < 0.15:
        edges: set[tuple[int, int]] = set()  # edgeless: everything isolated
    elif style < 0.4 and m >= 4:
        # Two (or more) islands: guaranteed disconnected components.
        cut = int(rng.integers(1, m))
        edges = set()
        for lo, hi in ((0, cut), (cut, m)):
            size = hi - lo
            for _ in range(int(rng.integers(0, 2 * size + 1))):
                a, b = rng.integers(lo, hi, size=2)
                if a != b:
                    edges.add((min(int(a), int(b)), max(int(a), int(b))))
    else:
        edges = set()
        for _ in range(int(rng.integers(0, 3 * m + 1))):
            a, b = rng.integers(0, m, size=2)
            if a != b:
                edges.add((min(int(a), int(b)), max(int(a), int(b))))
    return m, CSRAdjacency.from_edges(m, sorted(edges))


def _random_sources(rng: np.random.Generator, m: int) -> np.ndarray:
    ns = int(rng.integers(0, min(m, 70) + 1))
    if ns == 0:
        return np.array([], dtype=np.int64)
    if rng.random() < 0.5:
        return np.sort(rng.choice(m, size=ns, replace=False))
    return rng.integers(0, m, size=ns)  # duplicates + arbitrary order


@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestBitIdentityAgainstOracle:
    """~300 random graphs per backend across the three call shapes."""

    def test_full_apsp(self, backend):
        rng = np.random.default_rng(101)
        oracle = get_backend("python")
        fast = get_backend(backend)
        for _ in range(120):
            m, csr = _random_csr(rng)
            sources = _random_sources(rng, m)
            expected = oracle.bfs_distances(csr, sources)
            got = fast.bfs_distances(csr, sources)
            assert got.shape == expected.shape
            assert np.array_equal(got, expected)

    def test_targeted_block(self, backend):
        rng = np.random.default_rng(202)
        oracle = get_backend("python")
        fast = get_backend(backend)
        for _ in range(120):
            m, csr = _random_csr(rng)
            sources = _random_sources(rng, m)
            nt = int(rng.integers(0, m + 1))
            targets = rng.integers(0, m, size=nt)
            expected = oracle.bfs_distances(csr, sources, targets)
            got = fast.bfs_distances(csr, sources, targets)
            assert got.shape == expected.shape
            assert np.array_equal(got, expected)

    def test_single_row_repair(self, backend):
        """One source, all targets — the minimal repair-path call shape."""
        rng = np.random.default_rng(303)
        oracle = get_backend("python")
        fast = get_backend(backend)
        for _ in range(60):
            m, csr = _random_csr(rng)
            row = np.array([int(rng.integers(0, m))])
            expected = oracle.bfs_distances(csr, row)
            got = fast.bfs_distances(csr, row)
            assert np.array_equal(got, expected)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestDynamicDistanceMatrixBitIdentity:
    """remove/add/remove_switch keep the matrix exact under every backend."""

    def test_fault_and_repair_trajectory(self, backend):
        rng = np.random.default_rng(404)
        oracle = get_backend("python")
        for trial in range(6):
            graph = random_host_switch_graph(
                96, int(rng.integers(14, 28)), 9, seed=int(rng.integers(1 << 30))
            )
            ddm = DynamicDistanceMatrix(graph, backend=backend)
            assert ddm.backend_name == resolve_backend_name(backend)
            m = ddm.num_switches
            live = {tuple(sorted(map(int, e))) for e in graph.switch_edges()}
            for step in range(50):
                roll = rng.random()
                if roll < 0.25 and live:
                    # Switch takedown: cascades into per-edge removals and
                    # routinely partitions the fabric (inf entries).
                    victim = int(rng.integers(0, m))
                    for edge in ddm.remove_switch(victim):
                        live.discard(edge)
                elif roll < 0.6 and live:
                    edge = sorted(live)[int(rng.integers(len(live)))]
                    ddm.remove_edge(*edge)
                    live.discard(edge)
                else:
                    a, b = int(rng.integers(m)), int(rng.integers(m))
                    edge = (min(a, b), max(a, b))
                    if a == b or edge in live:
                        continue
                    ddm.add_edge(*edge)
                    live.add(edge)
                if step % 10 == 9:
                    csr = CSRAdjacency.from_edges(m, sorted(live))
                    expected = oracle.bfs_distances(csr, np.arange(m))
                    assert np.array_equal(ddm.dist, expected)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_incremental_evaluator_trajectory_matches_oracle_mode(backend):
    """A full propose/commit/rollback walk stays exact on every backend."""
    rng = np.random.default_rng(505)
    graph = random_host_switch_graph(128, 24, 9, seed=7)
    evaluator = IncrementalEvaluator(graph, oracle=True, backend=backend)
    assert evaluator.backend_name == resolve_backend_name(backend)
    for _ in range(80):
        edges = sorted(graph.switch_edges())
        move = (
            propose_swap(edges, rng, graph)
            if rng.random() < 0.6
            else propose_swing(edges, rng, graph)
        )
        if move is None or not move.is_legal(graph):
            continue
        move.apply(graph)
        evaluator.propose(move)
        if rng.random() < 0.5:
            evaluator.commit()
        else:
            evaluator.rollback()
            move.undo(graph)
    assert evaluator.value == h_aspl(graph)  # repro-lint: disable=REP004 -- bit-identity contract


def test_backend_selection_precedence(monkeypatch):
    """Explicit arg beats env var beats auto; numba degrades gracefully."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_backend_name("bitset") == "bitset"
    assert resolve_backend_name("python") == "python"
    monkeypatch.setenv(BACKEND_ENV, "python")
    assert resolve_backend_name(None) == "python"
    assert resolve_backend_name("bitset") == "bitset"  # arg wins
    monkeypatch.setenv(BACKEND_ENV, "nonsense")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend_name(None)
    # "numba" must resolve even when numba is absent (bitset fallback).
    assert resolve_backend_name("numba") in ("numba", "bitset")
    auto = resolve_backend_name("auto")
    assert auto in ("numba", "bitset")


def test_backend_env_override_reaches_metrics(monkeypatch):
    """switch_distance_matrix obeys REPRO_KERNEL_BACKEND per call."""
    graph = random_host_switch_graph(32, 8, 6, seed=1)
    monkeypatch.setenv(BACKEND_ENV, "python")
    via_env = switch_distance_matrix(graph)
    monkeypatch.setenv(BACKEND_ENV, "bitset")
    via_bitset = switch_distance_matrix(graph)
    assert np.array_equal(via_env, via_bitset)
    assert np.array_equal(
        switch_distance_matrix(graph, backend="bitset"), via_bitset
    )


def test_hostless_switches_participate_in_distances():
    """Switches with zero hosts are still BFS vertices (swing support)."""
    graph = random_host_switch_graph(40, 10, 8, seed=3)
    counts = graph.host_counts()
    dist = switch_distance_matrix(graph, backend="bitset")
    # Every switch has a row/column whether or not it bears hosts.
    assert dist.shape == (10, 10)
    assert np.array_equal(np.diag(dist), np.zeros(10))
    assert (counts >= 0).all()


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_empty_and_degenerate_shapes(backend):
    fast = get_backend(backend)
    csr = CSRAdjacency.from_edges(3, [(0, 1)])
    empty = fast.bfs_distances(csr, np.array([], dtype=np.int64))
    assert empty.shape == (0, 3)
    no_targets = fast.bfs_distances(csr, np.array([0]), np.array([], dtype=np.int64))
    assert no_targets.shape == (1, 0)
    lone = CSRAdjacency.from_edges(1, [])
    assert np.array_equal(
        fast.bfs_distances(lone, np.array([0])), np.array([[0.0]])
    )
