"""Tests for h-ASPL / diameter metrics, including oracle cross-checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import random_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import (
    diameter,
    h_aspl,
    h_aspl_and_diameter,
    h_aspl_from_distances,
    host_distance_matrix,
    single_source_host_distances,
    switch_aspl,
    switch_distance_matrix,
)
from tests.conftest import brute_force_h_aspl


class TestHAspl:
    def test_two_hosts_one_switch(self):
        g = HostSwitchGraph.from_edges(1, 4, [], [0, 0])
        assert h_aspl(g) == 2.0
        assert diameter(g) == 2.0

    def test_two_hosts_two_switches(self):
        g = HostSwitchGraph.from_edges(2, 4, [(0, 1)], [0, 1])
        assert h_aspl(g) == 3.0
        assert diameter(g) == 3.0

    def test_fig1_style_ring(self, fig1_graph):
        # 4-cycle of switches, 4 hosts each.  Per source host: 3 at d=2,
        # 8 at d=3 (two adjacent switches), 4 at d=4 (opposite switch).
        expected = (3 * 2 + 8 * 3 + 4 * 4) / 15
        assert h_aspl(fig1_graph) == pytest.approx(expected)
        assert diameter(fig1_graph) == 4.0

    def test_clique_graph(self, clique4_graph):
        # 2 same-switch pairs at distance 2 per switch; rest at 3.
        n = 12
        same = 4 * 3  # C(3,2) per switch * 4 switches
        total_pairs = n * (n - 1) // 2
        expected = (same * 2 + (total_pairs - same) * 3) / total_pairs
        assert h_aspl(clique4_graph) == pytest.approx(expected)
        assert diameter(clique4_graph) == 3.0

    def test_disconnected_hosts_give_inf(self):
        g = HostSwitchGraph.from_edges(2, 4, [], [0, 1])
        assert h_aspl(g) == float("inf")
        assert diameter(g) == float("inf")

    def test_single_host_rejected(self):
        g = HostSwitchGraph.from_edges(1, 4, [], [0])
        with pytest.raises(ValueError, match="at least 2 hosts"):
            h_aspl(g)

    def test_matches_brute_force_oracle(self, fig1_graph):
        assert h_aspl(fig1_graph) == pytest.approx(brute_force_h_aspl(fig1_graph))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_graphs_match_oracle(self, seed):
        g = random_host_switch_graph(n=14, m=5, r=8, seed=seed)
        assert h_aspl(g) == pytest.approx(brute_force_h_aspl(g))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_diameter_at_least_aspl(self, seed):
        g = random_host_switch_graph(n=20, m=6, r=8, seed=seed)
        aspl, diam = h_aspl_and_diameter(g)
        assert diam >= aspl
        assert diam >= 2.0


class TestDistanceMatrices:
    def test_switch_distance_matrix_symmetric(self, fig1_graph):
        d = switch_distance_matrix(fig1_graph)
        assert d.shape == (4, 4)
        assert np.allclose(d, d.T)
        assert np.all(np.diag(d) == 0)
        assert d[0, 2] == 2  # opposite corners of the 4-cycle

    def test_selected_sources(self, fig1_graph):
        d = switch_distance_matrix(fig1_graph, sources=np.asarray([1]))
        assert d.shape == (1, 4)
        assert d[0, 3] == 2

    def test_host_distance_matrix(self, fig1_graph):
        d = host_distance_matrix(fig1_graph)
        n = fig1_graph.num_hosts
        assert d.shape == (n, n)
        assert np.all(np.diag(d) == 0)
        # hosts 0 and 1 share switch 0.
        assert d[0, 1] == 2
        # host 0 (switch 0) to host on opposite switch 2.
        h_opposite = fig1_graph.hosts_of_switch(2)[0]
        assert d[0, h_opposite] == 4

    def test_single_source_host_distances(self, fig1_graph):
        d0 = single_source_host_distances(fig1_graph, 0)
        full = host_distance_matrix(fig1_graph)
        assert np.allclose(d0, full[0])

    def test_h_aspl_from_distances_matches(self, fig1_graph):
        counts = fig1_graph.host_counts()
        bearing = np.flatnonzero(counts > 0)
        dist = switch_distance_matrix(fig1_graph, sources=bearing)[:, bearing]
        value = h_aspl_from_distances(dist, counts[bearing], fig1_graph.num_hosts)
        assert value == pytest.approx(h_aspl(fig1_graph))


class TestSwitchAspl:
    def test_ring_of_four(self, fig1_graph):
        # distances in a 4-cycle: 1,1,2 per vertex pair set -> mean 4/3.
        assert switch_aspl(fig1_graph) == pytest.approx(4 / 3)

    def test_single_switch(self):
        g = HostSwitchGraph.from_edges(1, 4, [], [0, 0])
        assert switch_aspl(g) == 0.0

    def test_disconnected_switches(self):
        g = HostSwitchGraph.from_edges(3, 4, [(0, 1)], [0, 1, 1])
        assert switch_aspl(g) == float("inf")

    def test_formula1_relation_on_regular_graph(self):
        # Formula (1): A(G) = A(G') (mn - n) / (mn - m) + 2 for regular
        # host-switch graphs (n/m hosts per switch).
        from repro.core.construct import random_regular_host_switch_graph

        g = random_regular_host_switch_graph(n=24, m=8, r=6, seed=3)
        n, m = 24, 8
        lhs = h_aspl(g)
        rhs = switch_aspl(g) * (m * n - n) / (m * n - m) + 2.0
        assert lhs == pytest.approx(rhs)
