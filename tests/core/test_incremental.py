"""Property-style equivalence suite for the incremental h-ASPL evaluator.

The core guarantee under test: after *every* commit and rollback across
hundreds of random accepted/rejected moves — including disconnecting moves
and graphs with hostless switches — the evaluator's value matches the
from-scratch :func:`repro.core.metrics.h_aspl_and_diameter` to 1e-9 (in
fact bit-for-bit; the tolerance is the acceptance criterion's wording).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.construct import random_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.incremental import (
    IncrementalEvaluator,
    IncrementalEvaluatorError,
    _affected_sources,
)
from repro.core.kernels import CSRAdjacency, get_backend
from repro.core.metrics import h_aspl_and_diameter, switch_distance_matrix
from repro.core.operations import (
    SwingMove,
    propose_swap,
    propose_swing,
)


def _assert_matches_metrics(evaluator: IncrementalEvaluator, graph) -> None:
    expected = h_aspl_and_diameter(graph)[0]
    if math.isinf(expected):
        assert math.isinf(evaluator.value)
    else:
        assert abs(evaluator.value - expected) <= 1e-9
        # The docstring promises more than the tolerance: bit-equality.
        assert evaluator.value == expected


def _drive_random_moves(
    graph: HostSwitchGraph,
    evaluator: IncrementalEvaluator,
    rng: np.random.Generator,
    moves: int,
) -> dict[str, int]:
    """Random swap/swing churn with random commit/rollback decisions."""
    counters = {"proposed": 0, "committed": 0, "rolled_back": 0, "disconnecting": 0}
    edges = [tuple(sorted(e)) for e in graph.switch_edges()]
    for _ in range(moves):
        if rng.integers(0, 2):
            move = propose_swap(edges, rng, graph)
        else:
            move = propose_swing(edges, rng, graph)
        if move is None:
            continue
        move.apply(graph)
        value = evaluator.propose(move)
        counters["proposed"] += 1
        if math.isinf(value):
            counters["disconnecting"] += 1
        if rng.integers(0, 2):
            evaluator.commit()
            counters["committed"] += 1
            edges = [tuple(sorted(e)) for e in graph.switch_edges()]
        else:
            evaluator.rollback()
            move.undo(graph)
            counters["rolled_back"] += 1
        _assert_matches_metrics(evaluator, graph)
    return counters


class TestEquivalenceProperty:
    @pytest.mark.parametrize(
        "n,m,r,seed",
        [
            (48, 16, 5, 0),  # sparse: disconnecting moves occur
            (64, 16, 7, 1),  # denser
            (20, 24, 5, 2),  # hostless switches (capacity >> hosts)
        ],
    )
    def test_500_random_moves_match_metrics(self, n, m, r, seed):
        graph = random_host_switch_graph(n, m, r, seed=seed).copy()
        evaluator = IncrementalEvaluator(graph)
        rng = np.random.default_rng(seed + 100)
        counters = _drive_random_moves(graph, evaluator, rng, moves=1000)
        # The suite is only meaningful if it exercised real churn.
        assert counters["proposed"] >= 500
        assert counters["committed"] > 50
        assert counters["rolled_back"] > 50

    def test_disconnecting_moves_are_exercised(self):
        graph = random_host_switch_graph(48, 16, 5, seed=0).copy()
        evaluator = IncrementalEvaluator(graph)
        rng = np.random.default_rng(100)
        counters = _drive_random_moves(graph, evaluator, rng, moves=700)
        assert counters["disconnecting"] > 0

    def test_forced_fallback_path_matches(self):
        # fallback_fraction=0 rebuilds every proposal through the same
        # batched-BFS code the repair path uses: exercises the fallback.
        graph = random_host_switch_graph(48, 16, 5, seed=3).copy()
        evaluator = IncrementalEvaluator(graph, fallback_fraction=0.0)
        rng = np.random.default_rng(103)
        counters = _drive_random_moves(graph, evaluator, rng, moves=200)
        assert counters["proposed"] > 0
        assert evaluator.stats["fallbacks"] == counters["proposed"]

    def test_oracle_mode_accepts_correct_runs(self):
        graph = random_host_switch_graph(32, 12, 6, seed=4).copy()
        evaluator = IncrementalEvaluator(graph, oracle=True)
        rng = np.random.default_rng(104)
        _drive_random_moves(graph, evaluator, rng, moves=150)

    def test_oracle_mode_detects_desync(self):
        graph = random_host_switch_graph(32, 12, 6, seed=5).copy()
        evaluator = IncrementalEvaluator(graph, oracle=True)
        rng = np.random.default_rng(105)
        edges = [tuple(sorted(e)) for e in graph.switch_edges()]
        move = None
        while move is None:
            move = propose_swap(edges, rng, graph)
        # Mutating the graph without routing the move through propose()
        # desynchronises the evaluator; the oracle must notice.
        move.apply(graph)
        other = None
        while other is None:
            other = propose_swing(
                [tuple(sorted(e)) for e in graph.switch_edges()], rng, graph
            )
        other.apply(graph)
        with pytest.raises(IncrementalEvaluatorError, match="oracle"):
            evaluator.propose(other)

    def test_two_neighbor_batched_proposal(self):
        # The annealer's step-3 retry: propose [first], roll back, then
        # propose [first, second] relative to the same committed state.
        graph = random_host_switch_graph(40, 12, 7, seed=6).copy()
        evaluator = IncrementalEvaluator(graph, oracle=True)
        rng = np.random.default_rng(106)
        done = 0
        attempts = 0
        while done < 20 and attempts < 4000:
            attempts += 1
            edges = [tuple(sorted(e)) for e in graph.switch_edges()]
            i, j = rng.integers(0, len(edges), size=2)
            sa, sb = edges[int(i)]
            sc, sd = edges[int(j)]
            if len({sa, sb, sc, sd}) != 4:
                continue
            first = SwingMove(sa, sb, sc)
            if not first.is_legal(graph):
                continue
            first.apply(graph)
            evaluator.propose([first])
            evaluator.rollback()
            second = SwingMove(sd, sc, sb)
            if not second.is_legal(graph):
                first.undo(graph)
                continue
            second.apply(graph)
            value = evaluator.propose([first, second])
            if rng.integers(0, 2):
                evaluator.commit()
            else:
                evaluator.rollback()
                second.undo(graph)
                first.undo(graph)
            _assert_matches_metrics(evaluator, graph)
            expected = h_aspl_and_diameter(graph)[0]
            if not math.isinf(value):
                done += 1
        assert done == 20


class TestProtocol:
    def _graph(self):
        return random_host_switch_graph(24, 8, 6, seed=7).copy()

    def _legal_swap(self, graph, rng):
        edges = [tuple(sorted(e)) for e in graph.switch_edges()]
        move = None
        while move is None:
            move = propose_swap(edges, rng, graph)
        return move

    def test_double_propose_rejected(self):
        graph = self._graph()
        evaluator = IncrementalEvaluator(graph)
        rng = np.random.default_rng(0)
        move = self._legal_swap(graph, rng)
        move.apply(graph)
        evaluator.propose(move)
        with pytest.raises(IncrementalEvaluatorError, match="pending"):
            evaluator.propose(move)

    def test_commit_without_pending_rejected(self):
        evaluator = IncrementalEvaluator(self._graph())
        with pytest.raises(IncrementalEvaluatorError, match="commit"):
            evaluator.commit()

    def test_rollback_without_pending_rejected(self):
        evaluator = IncrementalEvaluator(self._graph())
        with pytest.raises(IncrementalEvaluatorError, match="rollback"):
            evaluator.rollback()

    def test_bad_fallback_fraction_rejected(self):
        with pytest.raises(ValueError, match="fallback_fraction"):
            IncrementalEvaluator(self._graph(), fallback_fraction=1.5)

    def test_too_few_hosts_rejected(self):
        graph = HostSwitchGraph.from_edges(2, 4, [(0, 1)], [0])
        with pytest.raises(ValueError, match="hosts"):
            IncrementalEvaluator(graph)

    def test_rebuild_resynchronises(self):
        graph = self._graph()
        evaluator = IncrementalEvaluator(graph)
        rng = np.random.default_rng(1)
        move = self._legal_swap(graph, rng)
        move.apply(graph)  # behind the evaluator's back
        evaluator.rebuild()
        _assert_matches_metrics(evaluator, graph)

    def test_stats_accumulate(self):
        graph = self._graph()
        evaluator = IncrementalEvaluator(graph)
        rng = np.random.default_rng(2)
        for _ in range(5):
            move = self._legal_swap(graph, rng)
            move.apply(graph)
            evaluator.propose(move)
            evaluator.commit()
        assert evaluator.stats["proposals"] == 5
        assert (
            evaluator.stats["repaired_rows"] > 0 or evaluator.stats["fallbacks"] > 0
        )


class TestRepairPrimitives:
    def test_kernel_bfs_matches_metrics(self):
        graph = random_host_switch_graph(40, 14, 6, seed=8)
        m = graph.num_switches
        csr = CSRAdjacency.from_graph(graph)
        dist = get_backend("python").bfs_distances(csr, np.arange(m))
        assert np.array_equal(dist, switch_distance_matrix(graph))

    def test_kernel_bfs_reports_unreachable_as_inf(self):
        csr = CSRAdjacency.from_edges(4, [(0, 1)])
        dist = get_backend("python").bfs_distances(csr, np.arange(4))
        assert dist[0, 1] == 1.0
        assert math.isinf(dist[0, 2])
        assert dist[2, 2] == 0.0

    def test_affected_sources_exact_on_path_graph(self):
        # Path 0-1-2-3 with a chord 0-2: removing {1, 2} strands nobody
        # with the chord as alternative except sources whose only route to
        # 2 ran through 1.
        m = 4
        csr = CSRAdjacency.from_edges(m, [(0, 1), (1, 2), (2, 3), (0, 2)])
        dist = get_backend("python").bfs_distances(csr, np.arange(m))
        stripped = csr.with_edge_removed(1, 2)
        affected = set(_affected_sources(dist, stripped, 1, 2).tolist())
        after = get_backend("python").bfs_distances(stripped, np.arange(m))
        truly_changed = {
            int(x) for x in range(m) if not np.array_equal(dist[x], after[x])
        }
        assert truly_changed <= affected
        # Exactness on this fixture: the test is not just a superset.
        assert affected == truly_changed
