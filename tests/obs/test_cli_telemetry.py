"""CLI --telemetry-out / telemetry summarize|validate end-to-end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import SCHEMA, validate_event


def _solve_with_trace(tmp_path, flag_position: str = "after"):
    trace = tmp_path / "run.jsonl"
    argv = ["solve", "24", "8", "--steps", "150", "--seed", "1",
            "--telemetry-out", str(trace)]
    if flag_position == "before":
        argv = ["--telemetry-out", str(trace)] + argv[:-2]
    assert main(argv) == 0
    return trace


class TestTelemetryOut:
    def test_solve_writes_schema_valid_jsonl(self, tmp_path, capsys):
        trace = _solve_with_trace(tmp_path)
        out = capsys.readouterr().out
        assert "ORP(n=24, r=8)" in out  # result still lands on stdout
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            assert validate_event(json.loads(line)) == []
        names = {json.loads(line)["name"] for line in lines}
        assert "anneal.proposals" in names
        assert "solver.restart" in {json.loads(l).get("name") for l in lines}

    def test_global_flag_accepted_before_subcommand(self, tmp_path):
        trace = _solve_with_trace(tmp_path, flag_position="before")
        assert trace.exists() and trace.read_text().strip()

    def test_no_flag_no_trace(self, tmp_path, capsys):
        assert main(["solve", "24", "8", "--steps", "100", "--seed", "1"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestTelemetrySubcommand:
    def test_validate_clean_trace(self, tmp_path, capsys):
        trace = _solve_with_trace(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "validate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "schema-valid" in out and SCHEMA in out

    def test_validate_corrupt_trace_fails(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"schema": "wrong", "kind": "event"}\nnot json\n')
        assert main(["telemetry", "validate", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "problem(s)" in out

    def test_summarize_reports_run(self, tmp_path, capsys):
        trace = _solve_with_trace(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "acceptance rate" in out
        assert "per-restart summaries" in out

    def test_summarize_tolerates_bad_lines(self, tmp_path, capsys):
        trace = _solve_with_trace(tmp_path)
        with trace.open("a") as fh:
            fh.write("garbage\n")
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(trace)]) == 0
        assert "telemetry summary" in capsys.readouterr().out

    def test_missing_path_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["telemetry", "validate", str(tmp_path / "absent.jsonl")])


class TestJobsMerge:
    def test_parallel_solve_trace_accounts_for_all_restarts(self, tmp_path, capsys):
        trace = tmp_path / "par.jsonl"
        assert main(["solve", "40", "6", "--m", "10", "--steps", "100",
                     "--seed", "3", "--restarts", "4", "--jobs", "4",
                     "--telemetry-out", str(trace)]) == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        for record in records:
            assert validate_event(record) == []
        restarts = [r for r in records
                    if r["kind"] == "event" and r["name"] == "solver.restart"]
        assert sorted(r["fields"]["index"] for r in restarts) == [0, 1, 2, 3]
        proposals = next(r for r in records if r["kind"] == "counter"
                         and r["name"] == "anneal.proposals")
        assert proposals["value"] == 4 * 100
