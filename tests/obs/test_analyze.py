"""Span-tree reconstruction, time attribution, and flamegraph export."""

from __future__ import annotations

import pytest

from repro.obs import MemorySink, TelemetryRegistry
from repro.obs.analyze import (
    analyze_report,
    build_span_trees,
    critical_path,
    folded_stacks,
    format_folded,
    span_rollup,
)


def span(name, ts, duration_s, depth, parent=None, status="ok"):
    return {
        "schema": "repro.obs/v1",
        "kind": "span",
        "name": name,
        "ts": ts,
        "duration_s": duration_s,
        "depth": depth,
        "parent": parent,
        "status": status,
        "attrs": {},
    }


class TestBuildSpanTrees:
    def test_simple_nesting(self):
        # Exit order is post-order: children close before their parent.
        records = [
            span("child_a", 1.0, 0.4, 1, parent="root"),
            span("child_b", 1.9, 0.8, 1, parent="root"),
            span("root", 2.0, 1.9, 0),
        ]
        roots = build_span_trees(records)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root" and not root.orphaned
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert root.self_time_s == pytest.approx(1.9 - 0.4 - 0.8)

    def test_grandchildren_attach_to_middle_level(self):
        records = [
            span("leaf", 0.5, 0.2, 2, parent="mid"),
            span("mid", 0.8, 0.6, 1, parent="root"),
            span("root", 1.0, 1.0, 0),
        ]
        (root,) = build_span_trees(records)
        assert root.children[0].name == "mid"
        assert root.children[0].children[0].name == "leaf"

    def test_non_span_records_ignored(self):
        records = [
            {"schema": "repro.obs/v1", "kind": "counter", "name": "x",
             "ts": 0.0, "value": 3},
            span("root", 1.0, 1.0, 0),
        ]
        assert len(build_span_trees(records)) == 1

    def test_truncated_trace_marks_orphans(self):
        # A killed worker: the child exited but its parent never did.
        records = [span("child", 1.0, 0.4, 1, parent="root")]
        (orphan,) = build_span_trees(records)
        assert orphan.name == "child"
        assert orphan.orphaned
        # Its recorded time still shows up in the rollup.
        assert span_rollup([orphan])["child"]["total_s"] == pytest.approx(0.4)

    def test_truncated_trace_keeps_orphan_subtree(self):
        records = [
            span("leaf", 0.9, 0.1, 2, parent="mid"),
            span("mid", 1.0, 0.5, 1, parent="root"),
            # root never exits
        ]
        (orphan,) = build_span_trees(records)
        assert orphan.name == "mid" and orphan.orphaned
        assert orphan.children[0].name == "leaf"
        assert not orphan.children[0].orphaned

    def test_merged_multiprocess_blocks_form_a_forest(self):
        # Two pool workers' snapshots re-emit as contiguous blocks, each
        # rooted at depth 0 with the same span names.
        records = [
            span("anneal.run", 1.0, 1.0, 0),            # worker 0
            span("inner", 2.5, 0.3, 1, parent="anneal.run"),
            span("anneal.run", 3.0, 2.0, 0),            # worker 1
        ]
        roots = build_span_trees(records)
        assert [r.name for r in roots] == ["anneal.run", "anneal.run"]
        # The second worker's root claims its own child, not the first's.
        assert roots[0].children == []
        assert [c.name for c in roots[1].children] == ["inner"]
        rollup = span_rollup(roots)
        assert rollup["anneal.run"]["count"] == 2
        assert rollup["anneal.run"]["total_s"] == pytest.approx(3.0)

    def test_zero_duration_spans(self):
        records = [
            span("instant", 1.0, 0.0, 1, parent="root"),
            span("root", 1.0, 0.5, 0),
        ]
        (root,) = build_span_trees(records)
        child = root.children[0]
        assert child.duration_s == 0.0
        assert child.self_time_s == 0.0
        assert root.self_time_s == pytest.approx(0.5)
        folded = folded_stacks([root])
        assert folded["root;instant"] == 0.0

    def test_self_time_clamped_at_zero(self):
        # Clock skew can make children sum past the parent; never negative.
        records = [
            span("child", 1.0, 0.9, 1, parent="root"),
            span("root", 1.0, 0.5, 0),
        ]
        (root,) = build_span_trees(records)
        assert root.self_time_s == 0.0


class TestFoldedStacks:
    def test_folded_values_sum_to_root_duration(self):
        records = [
            span("leaf", 0.5, 0.2, 2, parent="mid"),
            span("mid", 0.8, 0.6, 1, parent="root"),
            span("other", 0.9, 0.1, 1, parent="root"),
            span("root", 1.0, 1.0, 0),
        ]
        roots = build_span_trees(records)
        folded = folded_stacks(roots)
        assert sum(folded.values()) == pytest.approx(roots[0].duration_s)
        assert set(folded) == {"root", "root;mid", "root;mid;leaf", "root;other"}

    def test_format_is_flamegraph_input(self):
        folded = {"a;b": 0.5, "a": 1.0}
        lines = format_folded(folded).splitlines()
        assert lines == ["a 1000000", "a;b 500000"]  # microseconds, heaviest first

    def test_identical_stacks_accumulate(self):
        records = [
            span("anneal.run", 1.0, 1.0, 0),
            span("anneal.run", 2.0, 2.0, 0),
        ]
        folded = folded_stacks(build_span_trees(records))
        assert folded == {"anneal.run": pytest.approx(3.0)}


class TestCriticalPath:
    def test_descends_heaviest_child(self):
        records = [
            span("light", 0.4, 0.1, 1, parent="root"),
            span("heavy", 0.9, 0.7, 1, parent="root"),
            span("root", 1.0, 1.0, 0),
        ]
        (root,) = build_span_trees(records)
        assert [n.name for n in critical_path(root)] == ["root", "heavy"]


class TestAnalyzeReport:
    def test_report_sections(self):
        records = [
            span("inner", 0.8, 0.5, 1, parent="root"),
            span("root", 1.0, 1.0, 0),
            {"schema": "repro.obs/v1", "kind": "timer", "name": "kernel.bfs_s",
             "ts": 1.0, "count": 10, "total_s": 0.5, "max_s": 0.1},
        ]
        report = analyze_report(records)
        assert "span trees" in report
        assert "time attribution" in report
        assert "critical path: root" in report
        assert "kernel.bfs_s" in report

    def test_empty_trace(self):
        report = analyze_report([])
        assert "no spans" in report

    def test_orphans_flagged_in_report(self):
        report = analyze_report([span("child", 1.0, 0.4, 1, parent="gone")])
        assert "orphaned" in report


class TestEndToEnd:
    def test_flamegraph_root_time_matches_wall_time(self):
        """Acceptance: folded-stack root cumulative time is within 5% of
        the summed AnnealingResult.wall_time_s of the traced solve."""
        from repro.core.annealing import AnnealingSchedule
        from repro.core.solver import solve_orp

        tel = TelemetryRegistry("test")
        sink = MemorySink()
        tel.add_sink(sink)
        sol = solve_orp(
            48, 6, schedule=AnnealingSchedule(num_steps=500),
            restarts=2, seed=3, telemetry=tel,
        )
        tel.close()
        roots = build_span_trees(sink.events)
        anneal_roots = [r for r in roots if r.name == "anneal.run"]
        assert len(anneal_roots) == len(sol.restarts) == 2
        folded = folded_stacks(anneal_roots)
        folded_total = sum(folded.values())
        wall_total = sum(r.wall_time_s for r in sol.restarts)
        assert folded_total == pytest.approx(wall_total, rel=0.05)

    def test_traced_run_bit_identical_to_untraced(self):
        """Monitoring must be a pure observer: same graph, same numbers."""
        from repro.core.annealing import AnnealingSchedule
        from repro.core.serialization import graph_to_text
        from repro.core.solver import solve_orp

        kwargs = dict(schedule=AnnealingSchedule(num_steps=300), restarts=2, seed=7)
        plain = solve_orp(32, 6, **kwargs)
        tel = TelemetryRegistry("test")
        tel.add_sink(MemorySink())
        traced = solve_orp(32, 6, telemetry=tel, **kwargs)
        tel.close()
        assert traced.h_aspl == plain.h_aspl  # repro-lint: disable=REP004 -- bit-identity check
        assert graph_to_text(traced.graph) == graph_to_text(plain.graph)
