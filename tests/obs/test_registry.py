"""Registry instruments, spans, snapshot/merge, and the null object."""

from __future__ import annotations

import pickle

import pytest

import repro.obs.registry as registry_module
from repro.obs import (
    NULL_TELEMETRY,
    MemorySink,
    NullTelemetry,
    TelemetryRegistry,
)


class TestInstruments:
    def test_counter_get_or_create(self):
        reg = TelemetryRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert reg.counter("x") is c
        assert reg.counter("x").value == 5

    def test_gauge_last_write_wins(self):
        reg = TelemetryRegistry()
        reg.gauge("g").set(1.5)
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value == 2.5

    def test_timer_aggregates(self):
        reg = TelemetryRegistry()
        t = reg.timer("t")
        for s in (0.5, 0.25, 1.0):
            t.observe(s)
        assert t.count == 3
        assert t.total_s == 1.75
        assert t.min_s == 0.25
        assert t.max_s == 1.0
        assert t.mean_s == pytest.approx(1.75 / 3)

    def test_empty_timer_serializes_zero_min(self):
        t = TelemetryRegistry().timer("t")
        assert t.to_dict() == {"count": 0, "total_s": 0.0, "min_s": 0.0, "max_s": 0.0}

    def test_histogram_bucket_rule(self):
        # bucket i is "bounds[i-1] < x <= bounds[i]"; last bucket overflows.
        h = TelemetryRegistry().histogram("h", (0.0, 1.0, 2.0))
        for x in (-5.0, 0.0, 0.5, 1.0, 1.5, 2.0, 2.5):
            h.observe(x)
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == 2.5

    def test_histogram_rejects_unsorted_bounds(self):
        reg = TelemetryRegistry()
        with pytest.raises(ValueError, match="sorted"):
            reg.histogram("h", (1.0, 0.0))
        with pytest.raises(ValueError, match="sorted"):
            reg.histogram("e", ())

    def test_histogram_bounds_conflict_raises(self):
        reg = TelemetryRegistry()
        reg.histogram("h", (0.0, 1.0))
        assert reg.histogram("h", (0.0, 1.0)).name == "h"
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("h", (0.0, 2.0))


class TestEventsAndSinks:
    def test_event_reaches_sink_and_buffer(self):
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        reg.event("hello", a=1)
        assert len(sink.events) == 1
        assert sink.events[0]["kind"] == "event"
        assert sink.events[0]["fields"] == {"a": 1}
        assert reg.snapshot()["events"] == sink.events

    def test_disabled_registry_emits_nothing(self):
        reg = TelemetryRegistry(enabled=False)
        sink = MemorySink()
        reg.add_sink(sink)
        reg.event("hello")
        assert sink.events == []
        assert reg.snapshot()["events"] == []

    def test_event_buffer_cap_drops_but_still_sinks(self, monkeypatch):
        monkeypatch.setattr(registry_module, "_EVENT_BUFFER_CAP", 3)
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        for i in range(5):
            reg.event("e", i=i)
        assert len(reg.snapshot()["events"]) == 3
        assert reg.counter("obs.events_dropped").value == 2
        assert len(sink.events) == 5  # sinks see everything

    def test_flush_writes_one_record_per_metric(self):
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.timer("t").observe(0.5)
        reg.histogram("h", (1.0,)).observe(0.5)
        reg.flush()
        assert sorted(ev["kind"] for ev in sink.events) == [
            "counter", "gauge", "histogram", "timer",
        ]

    def test_close_is_idempotent_and_closes_sinks(self):
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        reg.counter("c").inc()
        reg.close()
        reg.close()
        assert sink.closed
        assert sum(ev["kind"] == "counter" for ev in sink.events) == 1


class TestSnapshotMerge:
    @staticmethod
    def _populated(tag: int) -> TelemetryRegistry:
        # Exactly-representable floats so merge grouping cannot round.
        reg = TelemetryRegistry(f"worker-{tag}")
        reg.counter("c").inc(tag)
        reg.gauge("g").set(float(tag))
        reg.timer("t").observe(0.25 * tag)
        reg.histogram("h", (0.0, 1.0)).observe(float(tag))
        reg.event("tagged", tag=tag)
        return reg

    def test_snapshot_pickles(self):
        snap = self._populated(1).snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_accumulates(self):
        parent = TelemetryRegistry("parent")
        parent.merge(self._populated(1).snapshot())
        parent.merge(self._populated(2).snapshot())
        assert parent.counter("c").value == 3
        assert parent.gauge("g").value == 2.0  # last write wins
        t = parent.timer("t")
        assert (t.count, t.total_s, t.min_s, t.max_s) == (2, 0.75, 0.25, 0.5)
        assert parent.histogram("h", (0.0, 1.0)).counts == [0, 1, 1]
        assert [e["fields"]["tag"] for e in parent.snapshot()["events"]] == [1, 2]

    def test_merge_is_associative(self):
        snaps = [self._populated(tag).snapshot() for tag in (1, 2, 3)]

        left = TelemetryRegistry("fold")
        for snap in snaps:
            left.merge(snap)

        mid = TelemetryRegistry("mid")
        mid.merge(snaps[1])
        mid.merge(snaps[2])
        right = TelemetryRegistry("fold")
        right.merge(snaps[0])
        right.merge(mid.snapshot())

        assert left.snapshot() == right.snapshot()

    def test_merge_empty_timer_keeps_min(self):
        parent = TelemetryRegistry()
        parent.timer("t").observe(0.5)
        parent.merge({"timers": {"t": {"count": 0, "total_s": 0.0,
                                       "min_s": 0.0, "max_s": 0.0}}})
        assert parent.timer("t").min_s == 0.5

    def test_merge_into_empty_timer_resets_min(self):
        parent = TelemetryRegistry()
        parent.timer("t")  # created, never observed
        parent.merge({"timers": {"t": {"count": 2, "total_s": 1.0,
                                       "min_s": 0.25, "max_s": 0.75}}})
        assert parent.timer("t").min_s == 0.25

    def test_merge_histogram_bounds_mismatch_raises(self):
        parent = TelemetryRegistry()
        parent.histogram("h", (0.0, 1.0))
        bad = self._populated(1).snapshot()
        bad["histograms"]["h"]["bounds"] = [0.0, 2.0]
        # The get-or-create step rejects the conflicting bounds before
        # Histogram.merge would; either way merge() must raise.
        with pytest.raises(ValueError, match="bounds"):
            parent.merge(bad)

    def test_merged_events_reach_parent_sinks(self):
        parent = TelemetryRegistry()
        sink = MemorySink()
        parent.add_sink(sink)
        parent.merge(self._populated(7).snapshot())
        assert [e["name"] for e in sink.events] == ["tagged"]


class TestSpans:
    def test_span_event_payload(self):
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        with reg.span("outer", phase="x"):
            pass
        (ev,) = sink.events
        assert ev["kind"] == "span"
        assert ev["name"] == "outer"
        assert ev["status"] == "ok"
        assert ev["depth"] == 0
        assert ev["parent"] is None
        assert ev["attrs"] == {"phase": "x"}
        assert ev["duration_s"] >= 0.0

    def test_nested_spans_track_depth_and_parent(self):
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        inner, outer = sink.events  # inner closes first
        assert (inner["name"], inner["depth"], inner["parent"]) == ("inner", 1, "outer")
        assert (outer["name"], outer["depth"], outer["parent"]) == ("outer", 0, None)

    def test_span_exception_marks_error_and_propagates(self):
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        with pytest.raises(RuntimeError, match="boom"):
            with reg.span("fails"):
                raise RuntimeError("boom")
        (ev,) = sink.events
        assert ev["status"] == "error"
        assert reg._span_stack == []

    def test_exception_through_nested_spans_unwinds_stack(self):
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        with pytest.raises(ValueError):
            with reg.span("outer"):
                with reg.span("inner"):
                    raise ValueError
        assert [e["status"] for e in sink.events] == ["error", "error"]
        assert reg._span_stack == []
        # Registry still usable afterwards.
        with reg.span("again"):
            pass
        assert sink.events[-1]["status"] == "ok"


class TestNullTelemetry:
    def test_singleton_is_disabled(self):
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        assert NULL_TELEMETRY.enabled is False

    def test_all_operations_are_noops(self):
        NULL_TELEMETRY.counter("c").inc()
        NULL_TELEMETRY.gauge("g").set(1.0)
        NULL_TELEMETRY.timer("t").observe(1.0)
        NULL_TELEMETRY.histogram("h", (1.0,)).observe(0.5)
        NULL_TELEMETRY.event("e", a=1)
        with NULL_TELEMETRY.span("s", k=2):
            pass
        assert NULL_TELEMETRY.snapshot() == {}
        NULL_TELEMETRY.merge({"counters": {"c": {"value": 3}}})
        NULL_TELEMETRY.flush()
        NULL_TELEMETRY.close()
        assert NULL_TELEMETRY.snapshot() == {}
