"""load_jsonl tolerance and the summarize_events report sections."""

from __future__ import annotations

from repro.obs import (
    SCHEMA,
    JsonlSink,
    MemorySink,
    TelemetryRegistry,
    load_jsonl,
    summarize_events,
)


def _trace(populate) -> list[dict]:
    """Run ``populate(reg)`` and return the flushed record list."""
    reg = TelemetryRegistry()
    sink = MemorySink()
    reg.add_sink(sink)
    populate(reg)
    reg.close()
    return sink.events


class TestLoadJsonl:
    def test_tolerates_and_reports_bad_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        reg = TelemetryRegistry()
        reg.add_sink(JsonlSink(path))
        reg.event("good", a=1)
        reg.close()
        with path.open("a") as fh:
            fh.write("{not json\n")
            fh.write("\n")  # blank lines are skipped silently
            fh.write('{"schema": "other", "kind": "event"}\n')

        records, problems = load_jsonl(path)
        assert [r["name"] for r in records] == ["good"]
        assert len(problems) >= 2
        assert any("invalid JSON" in p for p in problems)
        assert all(p.startswith("line ") for p in problems)


class TestSummarizeSections:
    def test_empty_trace(self):
        out = summarize_events([])
        assert "0 records" in out
        assert "no recognised instrumentation" in out

    def test_annealing_section(self):
        def populate(reg):
            reg.counter("anneal.proposals").inc(1000)
            reg.counter("anneal.accepted").inc(250)
            reg.counter("anneal.improved").inc(40)
            reg.counter("anneal.moves.swing").inc(200)
            reg.counter("anneal.moves.swap").inc(50)
            reg.timer("anneal.wall_s").observe(2.0)

        out = summarize_events(_trace(populate))
        assert "acceptance rate" in out and "0.250" in out
        assert "proposals/sec" in out and "500" in out
        assert "committed swing moves" in out
        assert "committed swap moves" in out

    def test_evaluator_section(self):
        def populate(reg):
            reg.counter("evaluator.proposals").inc(100)
            reg.counter("evaluator.repaired_rows").inc(250)
            reg.counter("evaluator.fallbacks").inc(3)
            reg.counter("evaluator.oracle_checks").inc(1)

        out = summarize_events(_trace(populate))
        assert "rows repaired / move" in out and "2.50" in out
        assert "fallback rebuilds" in out
        assert "oracle checks" in out

    def test_restart_table_sorted_by_index(self):
        def populate(reg):
            for index in (1, 0):
                reg.event(
                    "solver.restart", index=index, initial_h_aspl=4.0,
                    h_aspl=3.5, steps=100, accepted=30, rejected=70,
                    wall_time_s=1.0,
                )

        out = summarize_events(_trace(populate))
        assert "per-restart summaries" in out
        lines = [ln for ln in out.splitlines() if "3.5000" in ln]
        assert len(lines) == 2
        # Row for restart 0 renders before restart 1 despite emit order.
        assert lines[0].strip().startswith("0")

    def test_simulation_section(self):
        def populate(reg):
            reg.counter("sim.events_fired").inc(4000)
            reg.gauge("sim.time_s").set(0.125)
            reg.timer("sim.wall_s").observe(2.0)
            reg.timer("sim.rank_compute_s").observe(0.5)
            reg.timer("sim.rank_recv_wait_s").observe(0.25)

        out = summarize_events(_trace(populate))
        assert "events fired" in out
        assert "simulated time (s)" in out and "0.125000" in out
        assert "events/sec (wall)" in out and "2000" in out
        assert "rank recv-wait" in out

    def test_partition_section_trajectory(self):
        def populate(reg):
            reg.counter("partition.trials").inc(3)
            reg.counter("partition.fm_passes").inc(12)
            for trial, cut in enumerate((90, 85, 88)):
                reg.event("partition.trial", trial=trial, nparts=4, cut=cut)

        out = summarize_events(_trace(populate))
        assert "edge-cut trajectory" in out
        assert "90 -> 85 -> 88" in out
        assert "best cut" in out and "85" in out

    def test_span_digest(self):
        def populate(reg):
            with reg.span("solver.anneal_restarts"):
                pass

        out = summarize_events(_trace(populate))
        assert "span" in out and "solver.anneal_restarts" in out

    def test_last_metric_record_wins(self):
        # Two flushes of the same counter: only the final value reports.
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        reg.counter("anneal.proposals").inc(10)
        reg.flush()
        reg.counter("anneal.proposals").inc(90)
        reg.flush()
        out = summarize_events(sink.events)
        assert "100" in out and "| 10 " not in out

    def test_report_is_schema_agnostic_about_extra_events(self):
        def populate(reg):
            reg.event("custom.thing", detail="x")
            reg.counter("anneal.proposals").inc(10)
            reg.counter("anneal.accepted").inc(5)

        out = summarize_events(_trace(populate))
        assert "acceptance rate" in out  # unknown events don't break sections


class TestSchemaConstant:
    def test_every_emitted_record_carries_schema(self):
        def populate(reg):
            reg.counter("c").inc()
            reg.event("e")
            with reg.span("s"):
                pass

        for record in _trace(populate):
            assert record["schema"] == SCHEMA


class TestDroppedEvents:
    def test_dropped_counter_warns_prominently(self):
        def populate(reg):
            reg.counter("obs.events_dropped").inc(12)
            reg.counter("anneal.proposals").inc(10)

        out = summarize_events(_trace(populate))
        lines = out.splitlines()
        # The warning sits right under the header, before any section.
        assert "WARNING: 12 event(s) dropped" in lines[1]
        assert "incomplete" in lines[1]

    def test_no_drops_no_warning(self):
        def populate(reg):
            reg.counter("anneal.proposals").inc(10)

        assert "dropped" not in summarize_events(_trace(populate))

    def test_buffer_overflow_increments_dropped_counter(self):
        from repro.obs import registry as registry_mod

        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        cap = registry_mod._EVENT_BUFFER_CAP
        for i in range(cap + 3):
            reg.event("spam", i=i)
        reg.close()
        out = summarize_events(sink.events)
        assert "WARNING: 3 event(s) dropped" in out
