"""JSONL schema validation and the three sink implementations."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    KINDS,
    SCHEMA,
    JsonlSink,
    MemorySink,
    SummarySink,
    TelemetryRegistry,
    load_jsonl,
    validate_event,
    validate_lines,
)


def _envelope(kind: str, **payload) -> dict:
    base = {"schema": SCHEMA, "kind": kind, "name": "x", "ts": 1.0}
    base.update(payload)
    return base


class TestValidateEvent:
    def test_valid_records_of_every_kind(self):
        records = [
            _envelope("event", fields={"a": 1}),
            _envelope("span", duration_s=0.5, depth=0, parent=None,
                      status="ok", attrs={}),
            _envelope("counter", value=3),
            _envelope("gauge", value=-1.5),
            _envelope("timer", count=2, total_s=1.0, min_s=0.25, max_s=0.75),
            _envelope("histogram", bounds=[0.0, 1.0], counts=[1, 2, 0],
                      count=3, sum=1.5),
        ]
        assert sorted({r["kind"] for r in records}) == sorted(KINDS)
        for record in records:
            assert validate_event(record) == []

    def test_non_object_rejected(self):
        assert validate_event([1, 2]) == ["record is list, expected object"]

    def test_wrong_schema_flagged(self):
        problems = validate_event(_envelope("counter", value=1) | {"schema": "v0"})
        assert any("schema" in p for p in problems)

    def test_unknown_kind_short_circuits(self):
        problems = validate_event(_envelope("mystery"))
        assert len(problems) == 1 and "kind" in problems[0]

    def test_missing_name_and_ts(self):
        record = _envelope("gauge", value=1.0)
        del record["name"], record["ts"]
        problems = validate_event(record)
        assert any("name" in p for p in problems)
        assert any("ts" in p for p in problems)

    def test_bool_is_not_a_count(self):
        # bool is an int subclass; the schema must not accept it.
        assert validate_event(_envelope("counter", value=True))
        assert validate_event(_envelope("gauge", value=False))

    def test_negative_counter_rejected(self):
        assert validate_event(_envelope("counter", value=-1))

    def test_span_field_checks(self):
        bad = _envelope("span", duration_s=-0.1, depth=-1, parent=7,
                        status="maybe", attrs=None)
        problems = validate_event(bad)
        for field in ("duration_s", "depth", "parent", "status", "attrs"):
            assert any(f"span.{field}" in p for p in problems), field

    def test_histogram_counts_length_must_match(self):
        bad = _envelope("histogram", bounds=[0.0, 1.0], counts=[1, 2],
                        count=3, sum=1.5)
        assert any("counts" in p for p in validate_event(bad))

    def test_histogram_unsorted_bounds_rejected(self):
        bad = _envelope("histogram", bounds=[1.0, 0.0], counts=[0, 0, 0],
                        count=0, sum=0.0)
        assert any("bounds" in p for p in validate_event(bad))

    def test_validate_lines_reports_line_numbers(self):
        records = [_envelope("counter", value=1), _envelope("counter", value=-1)]
        out = validate_lines(records)
        assert out and all(lineno == 2 for lineno, _ in out)


class TestJsonlSink:
    def test_registry_trace_round_trips_schema_valid(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        reg = TelemetryRegistry()
        reg.add_sink(JsonlSink(path))
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.timer("t").observe(0.5)
        reg.histogram("h", (0.0, 1.0)).observe(0.5)
        reg.event("ev", a=1, b="s")
        with reg.span("sp", k=1):
            pass
        reg.close()

        records, problems = load_jsonl(path)
        assert problems == []
        # event + span + 4 metric flush records
        assert len(records) == 6
        assert {r["kind"] for r in records} == set(KINDS)
        counter = next(r for r in records if r["kind"] == "counter")
        assert (counter["name"], counter["value"]) == ("c", 2)

    def test_eager_open_leaves_partial_trace_on_crash(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        reg = TelemetryRegistry()
        reg.add_sink(JsonlSink(path))
        reg.event("before-crash")
        # No close(): every line is flushed as written.
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "before-crash"

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            sink.write({"schema": SCHEMA})

    def test_non_json_values_stringified(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.write({"schema": SCHEMA, "obj": object()})
        sink.close()
        assert "obj" in json.loads(path.read_text())


class TestMemorySink:
    def test_records_and_close_flag(self):
        sink = MemorySink()
        sink.write({"a": 1})
        assert sink.events == [{"a": 1}] and not sink.closed
        sink.close()
        assert sink.closed


class TestSummarySink:
    def test_writes_report_on_close(self):
        stream = io.StringIO()
        reg = TelemetryRegistry()
        reg.add_sink(SummarySink(stream))
        reg.counter("anneal.proposals").inc(100)
        reg.counter("anneal.accepted").inc(25)
        reg.close()
        out = stream.getvalue()
        assert "telemetry summary" in out
        assert "0.250" in out  # acceptance rate
