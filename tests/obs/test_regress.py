"""Perf-history store, rolling baselines, and the regression gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    PERF_HISTORY_FORMAT,
    PerfHistory,
    detect_regressions,
    format_checks,
    ingest_trace_timers,
    load_bench,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestLoadBench:
    def test_schema_1_committed_baseline(self):
        # The real committed baselines predate the meta block.
        payload = load_bench(REPO_ROOT / "BENCH_pr7.json")
        assert payload["meta"] == {}
        assert "bench_h_aspl_4096_bitset" in payload["benchmarks"]
        assert all(isinstance(v, float) for v in payload["benchmarks"].values())

    def test_schema_2_with_meta(self, tmp_path):
        doc = {
            "schema": 2,
            "meta": {
                "schema_version": 2,
                "git_commit": "abc123",
                "timestamp": "2026-08-08T00:00:00Z",
                "backend": "bitset",
            },
            "benchmarks": {"bench_x": {"seconds": 0.5, "per_call_us": 1.0}},
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(doc))
        payload = load_bench(path)
        assert payload["benchmarks"] == {"bench_x": 0.5}
        assert payload["meta"]["git_commit"] == "abc123"

    def test_rejects_non_bench_payload(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"results": []}')
        with pytest.raises(ValueError, match="benchmarks"):
            load_bench(path)


class TestIngestTraceTimers:
    def test_last_cumulative_flush_wins(self):
        records = [
            {"kind": "timer", "name": "kernel.bfs_s", "count": 5, "total_s": 0.5},
            {"kind": "timer", "name": "kernel.bfs_s", "count": 10, "total_s": 2.0},
            {"kind": "event", "name": "solver.done"},
        ]
        assert ingest_trace_timers(records) == {"timer.kernel.bfs_s": 0.2}

    def test_zero_count_timers_skipped(self):
        records = [{"kind": "timer", "name": "idle", "count": 0, "total_s": 0.0}]
        assert ingest_trace_timers(records) == {}


class TestPerfHistory:
    def test_record_persist_reload(self, tmp_path):
        path = tmp_path / "history.json"
        hist = PerfHistory(path)
        hist.record({"bench_x": 1.0}, commit="c1", timestamp="t1", source="ci")
        hist.record({"bench_x": 1.2}, commit="c2", timestamp="t2", source="ci")
        payload = json.loads(path.read_text())
        assert payload["format"] == PERF_HISTORY_FORMAT
        reloaded = PerfHistory(path)
        assert reloaded.recent("bench_x") == [1.0, 1.2]
        assert reloaded.entries[0]["commit"] == "c1"

    def test_recent_windows_and_missing_names(self, tmp_path):
        hist = PerfHistory(tmp_path / "h.json")
        for i in range(8):
            hist.record({"bench_x": float(i)})
        assert hist.recent("bench_x", window=3) == [5.0, 6.0, 7.0]
        assert hist.recent("bench_y") == []

    def test_max_entries_prunes_oldest(self, tmp_path):
        hist = PerfHistory(tmp_path / "h.json")
        for i in range(5):
            hist.record({"bench_x": float(i)}, max_entries=3)
        assert hist.recent("bench_x", window=10) == [2.0, 3.0, 4.0]

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text('{"format": "something-else/v9", "entries": []}')
        with pytest.raises(ValueError, match="format"):
            PerfHistory(path)


class TestDetectRegressions:
    def test_synthetic_2x_slowdown_flagged_vs_real_baseline(self):
        """Acceptance: a 2x slowdown against BENCH_pr7.json must FAIL."""
        baseline = load_bench(REPO_ROOT / "BENCH_pr7.json")["benchmarks"]
        names = ["bench_h_aspl_4096_bitset", "bench_anneal_step_4096_incremental"]
        slow = {name: baseline[name] * 2.0 for name in names}
        checks = detect_regressions(slow, baseline, names=names)
        assert all(c.regressed for c in checks)
        assert all(c.ratio == pytest.approx(2.0) for c in checks)
        report = format_checks(checks)
        assert "2/2 check(s) failed" in report
        assert "FAIL" in report

    def test_real_trajectory_passes_self_check(self):
        """Acceptance: the committed baseline vs itself is clean."""
        baseline = load_bench(REPO_ROOT / "BENCH_pr7.json")["benchmarks"]
        checks = detect_regressions(dict(baseline), baseline)
        assert not any(c.regressed for c in checks)
        assert "0/" in format_checks(checks)

    def test_history_median_beats_baseline_file(self, tmp_path):
        # Three history entries with one noisy outlier: median 1.0 holds
        # the bar even though the committed baseline (10.0) is loose.
        hist = PerfHistory(tmp_path / "h.json")
        for v in (1.0, 1.0, 5.0):
            hist.record({"bench_x": v})
        (check,) = detect_regressions(
            {"bench_x": 1.4}, {"bench_x": 10.0}, names=["bench_x"], history=hist
        )
        assert check.source == "history-median(3)"
        assert check.baseline_s == 1.0
        assert not check.regressed
        (slow,) = detect_regressions(
            {"bench_x": 2.0}, {"bench_x": 10.0}, names=["bench_x"], history=hist
        )
        assert slow.regressed  # 2.0x the median, over the 1.5x bar

    def test_thin_history_falls_back_to_baseline_file(self, tmp_path):
        hist = PerfHistory(tmp_path / "h.json")
        hist.record({"bench_x": 1.0})  # only one entry < min_history
        (check,) = detect_regressions(
            {"bench_x": 1.2}, {"bench_x": 1.0}, names=["bench_x"], history=hist
        )
        assert check.source == "baseline-file"
        assert not check.regressed

    def test_missing_name_is_a_failure(self):
        (check,) = detect_regressions({}, {"bench_x": 1.0}, names=["bench_x"])
        assert check.regressed and check.source == "missing"
        assert "missing from current run" in format_checks([check])
        (check,) = detect_regressions({"bench_x": 1.0}, None, names=["bench_x"])
        assert check.regressed and check.source == "missing"
        assert "missing from baseline and history" in format_checks([check])

    def test_names_default_to_baseline_keys(self):
        checks = detect_regressions({"a": 1.0, "b": 1.0}, {"a": 1.0})
        assert [c.name for c in checks] == ["a"]

    def test_tolerance_is_configurable(self):
        (check,) = detect_regressions(
            {"a": 1.4}, {"a": 1.0}, names=["a"], tolerance=1.3
        )
        assert check.regressed
