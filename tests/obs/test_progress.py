"""Live monitoring: trace tailing, rolling aggregates, store snapshots."""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.spec import load_spec
from repro.obs.progress import ProgressAggregator, StoreProgress, TraceTailer, monitor


def make_spec(name="mon-unit", seeds=(0, 1), steps=300, **executor):
    executor.setdefault("checkpoint_every", 100)
    return load_spec(
        {
            "name": name,
            "grid": {"n": [24], "r": [6], "seed": list(seeds)},
            "defaults": {"steps": steps, "restarts": 2},
            "executor": executor,
        }
    )


def event(name, **fields):
    return {
        "schema": "repro.obs/v1",
        "kind": "event",
        "name": name,
        "ts": 0.0,
        "fields": fields,
    }


def write_lines(path, lines):
    with path.open("a") as fh:
        for line in lines:
            fh.write(line + "\n")


class TestTraceTailer:
    def test_incremental_reads(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        trace.write_text("")
        tailer = TraceTailer(trace)
        assert tailer.poll() == []
        write_lines(trace, [json.dumps(event("anneal.phase", step=1))])
        assert [r["name"] for r in tailer.poll()] == ["anneal.phase"]
        assert tailer.poll() == []  # nothing new appended
        write_lines(trace, [json.dumps(event("solver.done"))])
        assert [r["name"] for r in tailer.poll()] == ["solver.done"]

    def test_partial_line_buffered_until_complete(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        record = json.dumps(event("anneal.phase", step=5))
        trace.write_text(record[:10])  # writer mid-record
        tailer = TraceTailer(trace)
        assert tailer.poll() == []
        assert tailer.invalid_lines == 0
        with trace.open("a") as fh:
            fh.write(record[10:] + "\n")
        (rec,) = tailer.poll()
        assert rec["fields"]["step"] == 5

    def test_truncation_resets_to_start(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        write_lines(trace, [json.dumps(event("solver.start"))] * 3)
        tailer = TraceTailer(trace)
        assert len(tailer.poll()) == 3
        trace.write_text(json.dumps(event("anneal.phase")) + "\n")  # new run
        records = tailer.poll()
        assert tailer.truncated
        assert [r["name"] for r in records] == ["anneal.phase"]

    def test_malformed_lines_counted_not_raised(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        write_lines(trace, ["{not json", '{"no": "kind"}', json.dumps(event("x"))])
        tailer = TraceTailer(trace)
        assert len(tailer.poll()) == 1
        assert tailer.invalid_lines == 2

    def test_missing_file_polls_empty(self, tmp_path):
        tailer = TraceTailer(tmp_path / "absent.jsonl")
        assert tailer.poll() == []


class TestProgressAggregator:
    def test_heartbeat_and_phase_render(self):
        agg = ProgressAggregator()
        agg.update(
            [
                event(
                    "anneal.heartbeat",
                    step=500, num_steps=1000, best=4.2, current=4.5,
                    accepted=120, elapsed_s=2.0, eta_s=2.0,
                ),
                event("anneal.phase", acceptance_rate=0.25, proposals_per_sec=250.0),
            ]
        )
        out = agg.render()
        assert "anneal: step 500/1000 (50%)" in out
        assert "best 4.2000" in out
        assert "ETA 2s" in out
        assert "acceptance 0.250" in out
        assert "250 proposals/s" in out

    def test_solver_progress_tracks_best_per_nr(self):
        agg = ProgressAggregator()
        agg.update(
            [
                event("solver.progress", restarts_done=1, restarts=2,
                      n=32, r=6, h_aspl=4.5, best_h_aspl=4.5),
                event("solver.progress", restarts_done=2, restarts=2,
                      n=32, r=6, h_aspl=4.3, best_h_aspl=4.3),
                event("solver.progress", restarts_done=1, restarts=1,
                      n=64, r=8, h_aspl=3.9, best_h_aspl=3.9),
            ]
        )
        out = agg.render()
        assert "solver: restart 1/1 done" in out  # last event wins the status line
        assert "best h-ASPL (n=32, r=6): 4.3000" in out
        assert "best h-ASPL (n=64, r=8): 3.9000" in out

    def test_campaign_progress_and_heartbeats(self):
        agg = ProgressAggregator()
        agg.update(
            [
                event("campaign.heartbeat", campaign="x", checkpoints=1,
                      done=0, points=2, in_flight=1),
                event("campaign.progress", campaign="x", points=2, done=1,
                      solved=1, cached=0, failed=0, interrupted=False, retried=0),
            ]
        )
        out = agg.render()
        assert "campaign: 1/2 points done (1 solved, 0 cached, 0 failed, 0 retried)" in out
        assert "checkpoints: 1 heartbeat(s) observed" in out

    def test_dropped_events_warn(self):
        agg = ProgressAggregator()
        agg.update(
            [
                {
                    "schema": "repro.obs/v1", "kind": "counter",
                    "name": "obs.events_dropped", "ts": 0.0, "value": 7,
                }
            ]
        )
        assert "WARNING: 7 event(s) dropped" in agg.render()

    def test_empty_stream_renders_placeholder(self):
        assert "no progress events yet" in ProgressAggregator().render()


class TestStoreProgress:
    def test_finished_campaign_snapshot(self, tmp_path):
        spec = make_spec(name="mon-done")
        run_campaign(spec, tmp_path)
        snap = StoreProgress(tmp_path / "mon-done").snapshot()
        assert "campaign mon-done: 2/2 points done" in snap
        assert "(2 solved, 0 failed, 0 in progress, 0 pending" in snap
        assert "best h-ASPL (n=24, r=6):" in snap

    def test_store_root_aggregates_campaigns(self, tmp_path):
        spec = make_spec(name="mon-root")
        run_campaign(spec, tmp_path)
        snap = StoreProgress(tmp_path).snapshot()  # root, not campaign dir
        assert "campaign mon-root" in snap

    def test_checkpointed_point_shows_progress_and_eta(self, tmp_path):
        spec = make_spec(name="mon-ckpt", steps=400)
        killed = run_campaign(spec, tmp_path, stop_after_checkpoints=2)
        assert killed.interrupted
        snap = StoreProgress(tmp_path / "mon-ckpt").snapshot()
        assert "in progress" in snap
        assert "restarts done" in snap
        assert "active restart at step" in snap
        assert "ETA" in snap

    def test_non_store_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            StoreProgress(tmp_path)  # empty dir: no spec.json anywhere


class TestMonitor:
    def test_once_on_trace_file(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        write_lines(trace, [json.dumps(event("anneal.phase", acceptance_rate=0.5,
                                             proposals_per_sec=100.0))])
        out = io.StringIO()
        snapshot = monitor(trace, once=True, stream=out)
        assert f"monitoring {trace}" in snapshot
        assert "acceptance 0.500" in snapshot
        assert snapshot in out.getvalue()

    def test_once_on_store_dir(self, tmp_path):
        spec = make_spec(name="mon-cli")
        run_campaign(spec, tmp_path)
        out = io.StringIO()
        snapshot = monitor(tmp_path / "mon-cli", once=True, stream=out)
        assert "campaign mon-cli: 2/2 points done" in snapshot

    def test_cycles_bounds_the_loop(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        trace.write_text("")
        out = io.StringIO()
        monitor(trace, cycles=1, stream=out)  # must terminate without sleep
        assert "monitoring" in out.getvalue()

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            monitor(tmp_path / "nope.jsonl", once=True)

    def test_invalid_lines_reported_in_header(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        write_lines(trace, ["garbage", json.dumps(event("solver.start"))])
        snapshot = monitor(trace, once=True, stream=io.StringIO())
        assert "1 unparseable line(s) skipped" in snapshot
