"""Restart summaries and the jobs>1 worker-registry merge in solve_orp."""

from __future__ import annotations

from repro.core.solver import ORPSolution, RestartSummary, solve_orp
from repro.obs import MemorySink, TelemetryRegistry

# Small non-trivial instance: n > r and no clique regime, so the annealer
# actually runs.  Kept tiny so the pool fan-out test stays fast.
N, R = 40, 6
KW = dict(m=10, restarts=3, seed=11)


def _solve(**overrides):
    from repro.core.annealing import AnnealingSchedule

    kwargs = dict(KW, schedule=AnnealingSchedule(num_steps=120), **overrides)
    return solve_orp(N, R, **kwargs)


class TestRestartSummaries:
    def test_populated_without_telemetry(self):
        sol = _solve()
        assert len(sol.restarts) == 3
        for i, summary in enumerate(sol.restarts):
            assert isinstance(summary, RestartSummary)
            assert summary.index == i
            assert summary.steps == 120
            assert summary.rejected == summary.steps - summary.accepted
            assert summary.h_aspl <= summary.initial_h_aspl
            assert summary.wall_time_s > 0
            assert isinstance(summary.seed_spawn_key, tuple)
        assert sol.h_aspl == min(s.h_aspl for s in sol.restarts)

    def test_serial_and_parallel_summaries_match(self):
        serial = _solve()
        parallel = _solve(jobs=3)
        assert serial.h_aspl == parallel.h_aspl
        assert serial.graph == parallel.graph
        # wall_time_s is run-dependent; everything else is deterministic.
        for a, b in zip(serial.restarts, parallel.restarts):
            assert (a.index, a.seed_spawn_key, a.initial_h_aspl, a.h_aspl,
                    a.steps, a.accepted, a.rejected) == \
                   (b.index, b.seed_spawn_key, b.initial_h_aspl, b.h_aspl,
                    b.steps, b.accepted, b.rejected)

    def test_trivial_regimes_have_no_restarts(self):
        star = solve_orp(4, 8)  # n <= r: single switch, no search
        assert star.restarts == [] and star.annealing is None

    def test_solution_dataclass_default(self):
        assert ORPSolution.__dataclass_fields__["restarts"].default_factory is not None


class TestTelemetryMerge:
    @staticmethod
    def _traced(jobs: int):
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        sol = _solve(jobs=jobs, telemetry=reg)
        return sol, reg, sink

    def test_serial_accounts_for_every_restart(self):
        sol, reg, sink = self._traced(jobs=1)
        assert reg.counter("anneal.proposals").value == 3 * 120
        restarts = [e for e in sink.events if e.get("name") == "solver.restart"]
        assert [e["fields"]["index"] for e in restarts] == [0, 1, 2]
        (done,) = [e for e in sink.events if e.get("name") == "solver.done"]
        assert done["fields"]["best_h_aspl"] == sol.h_aspl

    def test_parallel_merge_matches_serial_totals(self):
        _, serial_reg, _ = self._traced(jobs=1)
        _, parallel_reg, psink = self._traced(jobs=3)
        for name in ("anneal.proposals", "anneal.accepted", "anneal.improved",
                     "evaluator.proposals", "evaluator.repaired_rows"):
            assert parallel_reg.counter(name).value == \
                serial_reg.counter(name).value, name
        s_hist = serial_reg._histograms["anneal.delta_accepted"]
        p_hist = parallel_reg._histograms["anneal.delta_accepted"]
        assert p_hist.counts == s_hist.counts
        restarts = [e for e in psink.events if e.get("name") == "solver.restart"]
        assert len(restarts) == 3

    def test_restart_events_mirror_summaries(self):
        sol, _, sink = self._traced(jobs=2)
        events = sorted(
            (e["fields"] for e in sink.events
             if e.get("name") == "solver.restart"),
            key=lambda f: f["index"],
        )
        for f, summary in zip(events, sol.restarts):
            assert f["h_aspl"] == summary.h_aspl
            assert f["accepted"] == summary.accepted
            assert f["rejected"] == summary.rejected

    def test_span_wraps_the_fan_out(self):
        _, _, sink = self._traced(jobs=1)
        spans = [e for e in sink.events if e.get("kind") == "span"]
        # Each restart runs under its own worker-root anneal.run span;
        # worker snapshots merge after the parent's fan-out span closes.
        assert [s["name"] for s in spans] == [
            "solver.anneal_restarts"
        ] + ["anneal.run"] * 3
        assert spans[0]["attrs"]["restarts"] == 3
        assert all(s["depth"] == 0 for s in spans)
