"""Instrumentation accounting in anneal/evaluator/simulation/partition,
plus the disabled-telemetry O(1) overhead guard."""

from __future__ import annotations

from repro.core.annealing import AnnealingSchedule, anneal
from repro.core.construct import random_host_switch_graph
from repro.core.incremental import IncrementalEvaluator
from repro.obs import MemorySink, TelemetryRegistry
from repro.partition.kway import partition_host_switch
from repro.simulation.traffic import run_traffic


def _anneal(graph, steps: int, telemetry=None, **kwargs):
    return anneal(
        graph,
        schedule=AnnealingSchedule(num_steps=steps, initial_temperature=0.05),
        seed=3,
        telemetry=telemetry,
        **kwargs,
    )


class TestAnnealAccounting:
    def test_counters_match_result(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        reg = TelemetryRegistry()
        result = _anneal(g, 400, telemetry=reg)
        assert reg.counter("anneal.proposals").value == result.steps == 400
        assert reg.counter("anneal.accepted").value == result.accepted
        assert reg.counter("anneal.improved").value == result.improved
        move_total = sum(
            reg.counter(f"anneal.moves.{kind}").value
            for kind in ("swap", "swing", "swing2")
        )
        assert move_total == result.accepted

    def test_delta_histogram_counts_accepted_moves(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        reg = TelemetryRegistry()
        result = _anneal(g, 400, telemetry=reg)
        hist = reg._histograms["anneal.delta_accepted"]
        assert hist.count == result.accepted

    def test_phase_events_bounded_and_account_for_all_steps(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        result = _anneal(g, 1000, telemetry=reg)
        phases = [e for e in sink.events if e.get("name") == "anneal.phase"]
        assert 1 <= len(phases) <= 12  # _TELEMETRY_PHASES windows (+ tail)
        assert sum(p["fields"]["proposed"] for p in phases) == result.steps
        assert sum(p["fields"]["accepted"] for p in phases) == result.accepted
        for p in phases:
            assert 0.0 <= p["fields"]["acceptance_rate"] <= 1.0
            assert p["fields"]["temperature"] > 0

    def test_done_event_and_wall_time(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        result = _anneal(g, 200, telemetry=reg)
        (done,) = [e for e in sink.events if e.get("name") == "anneal.done"]
        assert done["fields"]["best_h_aspl"] == result.h_aspl
        assert done["fields"]["steps"] == result.steps
        assert result.wall_time_s > 0
        assert reg.timer("anneal.wall_s").total_s == result.wall_time_s

    def test_telemetry_never_touches_rng(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        plain = _anneal(g, 300)
        traced = _anneal(g, 300, telemetry=TelemetryRegistry())
        assert traced.h_aspl == plain.h_aspl
        assert traced.accepted == plain.accepted
        assert traced.graph == plain.graph

    def test_full_evaluator_emits_no_repair_stats(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        reg = TelemetryRegistry()
        _anneal(g, 100, telemetry=reg, evaluator="full")
        assert "evaluator.proposals" not in reg._counters


class TestEvaluatorInstrumentation:
    def test_repair_counters_flow_through_anneal(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        reg = TelemetryRegistry()
        result = _anneal(g, 300, telemetry=reg)
        proposals = reg.counter("evaluator.proposals").value
        # Early-bail steps never reach the evaluator, but every committed
        # move was proposed at least once.
        assert proposals >= result.accepted > 0
        assert reg.counter("evaluator.repaired_rows").value > 0
        hist = reg._histograms["evaluator.repaired_rows_per_move"]
        assert hist.count > 0

    def test_direct_evaluator_histogram(self):
        g = random_host_switch_graph(16, 5, 8, seed=1)
        reg = TelemetryRegistry()
        inc = IncrementalEvaluator(g, telemetry=reg)
        assert inc.stats["oracle_checks"] == 0
        hist = reg._histograms["evaluator.repaired_rows_per_move"]
        assert hist.count == 0  # nothing proposed yet


class _CountingDisabledRegistry(TelemetryRegistry):
    """Disabled registry that counts instrument/event/span API calls."""

    def __init__(self) -> None:
        super().__init__("counting", enabled=False)
        self.calls = 0

    def counter(self, name):
        self.calls += 1
        return super().counter(name)

    def gauge(self, name):
        self.calls += 1
        return super().gauge(name)

    def timer(self, name):
        self.calls += 1
        return super().timer(name)

    def histogram(self, name, bounds):
        self.calls += 1
        return super().histogram(name, bounds)

    def event(self, name, **fields):
        self.calls += 1
        super().event(name, **fields)

    def span(self, name, **attrs):
        self.calls += 1
        return super().span(name, **attrs)


class TestDisabledOverheadGuard:
    def test_disabled_anneal_makes_constant_registry_calls(self):
        # The disabled path must cost O(1) registry traffic, independent of
        # num_steps: a 10x longer run may not add a single API call.
        g = random_host_switch_graph(20, 6, 8, seed=3)
        short = _CountingDisabledRegistry()
        _anneal(g, 200, telemetry=short)
        long = _CountingDisabledRegistry()
        _anneal(g, 2000, telemetry=long)
        assert short.calls == long.calls == 0

    def test_disabled_run_identical_to_untraced(self):
        g = random_host_switch_graph(20, 6, 8, seed=3)
        plain = _anneal(g, 300)
        disabled = _anneal(g, 300, telemetry=TelemetryRegistry(enabled=False))
        assert disabled.h_aspl == plain.h_aspl
        assert disabled.accepted == plain.accepted


class TestSimulationInstrumentation:
    def test_traffic_run_emits_sim_metrics(self):
        g = random_host_switch_graph(16, 5, 8, seed=1)
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        res = run_traffic(g, "uniform", messages_per_host=4, seed=0,
                          telemetry=reg)
        assert reg.counter("sim.events_fired").value > 0
        assert reg.gauge("sim.time_s").value == res.duration_s
        assert reg.timer("sim.wall_s").count == 1
        (done,) = [e for e in sink.events if e.get("name") == "traffic.done"]
        assert done["fields"]["pattern"] == "uniform"

    def test_traffic_disabled_identical(self):
        g = random_host_switch_graph(16, 5, 8, seed=1)
        plain = run_traffic(g, "uniform", messages_per_host=4, seed=0)
        traced = run_traffic(g, "uniform", messages_per_host=4, seed=0,
                             telemetry=TelemetryRegistry())
        assert traced.mean_latency_s == plain.mean_latency_s


class TestPartitionInstrumentation:
    def test_trials_and_trajectory(self):
        g = random_host_switch_graph(32, 10, 8, seed=2)
        reg = TelemetryRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        parts, cut = partition_host_switch(g, 4, seed=0, trials=3,
                                           telemetry=reg)
        assert reg.counter("partition.trials").value == 3
        assert reg.counter("partition.fm_passes").value > 0
        trial_events = [e for e in sink.events
                        if e.get("name") == "partition.trial"]
        assert len(trial_events) == 3
        assert min(e["fields"]["cut"] for e in trial_events) == cut
        (done,) = [e for e in sink.events if e.get("name") == "partition.done"]
        assert done["fields"]["best_cut"] == cut

    def test_partition_disabled_identical(self):
        g = random_host_switch_graph(32, 10, 8, seed=2)
        plain = partition_host_switch(g, 4, seed=0, trials=2)
        traced = partition_host_switch(g, 4, seed=0, trials=2,
                                       telemetry=TelemetryRegistry())
        assert traced == plain
