"""Tests for the collective algorithms (message counts and completion)."""

from __future__ import annotations

import math

import pytest

from repro.simulation.mpi import run_mpi_program
from repro.topologies import torus


def make_net(num_hosts: int):
    base = max(3, math.isqrt(num_hosts) + 1)
    g, _ = torus(2, base, 8, num_hosts=num_hosts, fill="round-robin")
    return g


def run_collective(num_ranks: int, body):
    """Run one collective on every rank; return stats."""
    g = make_net(num_ranks)

    def prog(mpi):
        yield from body(mpi)

    return run_mpi_program(g, num_ranks, prog)


class TestBarrier:
    @pytest.mark.parametrize("p", [2, 3, 4, 7, 8])
    def test_completes_any_p(self, p):
        stats = run_collective(p, lambda mpi: mpi.barrier())
        # Dissemination: ceil(log2 P) rounds, one send per rank per round.
        assert stats.messages == p * math.ceil(math.log2(p))

    def test_single_rank_no_messages(self):
        stats = run_collective(1, lambda mpi: mpi.barrier())
        assert stats.messages == 0


class TestBcastReduce:
    @pytest.mark.parametrize("p", [2, 4, 5, 8])
    def test_bcast_message_count(self, p):
        stats = run_collective(p, lambda mpi: mpi.bcast(1000, root=0))
        assert stats.messages == p - 1  # a tree edge per non-root rank

    def test_bcast_nonzero_root(self):
        stats = run_collective(6, lambda mpi: mpi.bcast(1000, root=3))
        assert stats.messages == 5

    @pytest.mark.parametrize("p", [2, 4, 5, 8])
    def test_reduce_message_count(self, p):
        stats = run_collective(p, lambda mpi: mpi.reduce(1000, root=0))
        assert stats.messages == p - 1

    def test_bcast_bytes_scale_with_payload(self):
        small = run_collective(8, lambda mpi: mpi.bcast(10, root=0))
        large = run_collective(8, lambda mpi: mpi.bcast(10_000, root=0))
        assert large.bytes == pytest.approx(small.bytes * 1000)


class TestAllreduce:
    def test_power_of_two_recursive_doubling(self):
        stats = run_collective(8, lambda mpi: mpi.allreduce(64))
        assert stats.messages == 8 * 3  # log2(8) rounds, all ranks send

    def test_non_power_of_two_fallback(self):
        stats = run_collective(6, lambda mpi: mpi.allreduce(64))
        assert stats.messages == 2 * 5  # reduce + bcast trees

    def test_single_rank(self):
        stats = run_collective(1, lambda mpi: mpi.allreduce(64))
        assert stats.messages == 0


class TestAllgatherAlltoall:
    def test_allgather_ring_count(self):
        stats = run_collective(6, lambda mpi: mpi.allgather(100))
        assert stats.messages == 6 * 5

    def test_alltoall_pairwise_count_pow2(self):
        stats = run_collective(8, lambda mpi: mpi.alltoall(100))
        assert stats.messages == 8 * 7

    def test_alltoall_pairwise_count_general(self):
        stats = run_collective(6, lambda mpi: mpi.alltoall(100))
        assert stats.messages == 6 * 5

    def test_alltoall_total_bytes(self):
        stats = run_collective(4, lambda mpi: mpi.alltoall(250))
        assert stats.bytes == pytest.approx(4 * 3 * 250)

    def test_alltoallv_per_peer_sizes(self):
        def body(mpi):
            yield from mpi.alltoallv(lambda peer: 100.0 * (peer + 1))

        stats = run_collective(4, body)
        expected = sum(100.0 * (peer + 1) for r in range(4) for peer in range(4) if peer != r)
        assert stats.bytes == pytest.approx(expected)

    def test_back_to_back_collectives_do_not_cross_match(self):
        # Two alltoalls in a row: tags must keep rounds separate.
        def body(mpi):
            yield from mpi.alltoall(50)
            yield from mpi.alltoall(50)

        stats = run_collective(4, body)
        assert stats.messages == 2 * 4 * 3

    def test_mixed_collective_sequence(self):
        def body(mpi):
            yield from mpi.barrier()
            yield from mpi.bcast(10, root=1)
            yield from mpi.allreduce(8)
            yield from mpi.allgather(16)
            yield from mpi.alltoall(32)

        stats = run_collective(4, body)
        assert stats.time_s > 0


class TestScatterGather:
    @pytest.mark.parametrize("p", [2, 4, 5, 8])
    def test_scatter_message_count(self, p):
        stats = run_collective(p, lambda mpi: mpi.scatter(100, root=0))
        assert stats.messages == p - 1  # binomial tree edges

    def test_scatter_total_bytes_binomial(self):
        # P=4 from root 0: root sends 2 blocks to vrank 2 and 1 block to
        # vrank 1; vrank 2 sends 1 block to vrank 3 -> 4 blocks total.
        stats = run_collective(4, lambda mpi: mpi.scatter(100, root=0))
        assert stats.bytes == pytest.approx(400)

    def test_scatter_nonzero_root(self):
        stats = run_collective(6, lambda mpi: mpi.scatter(64, root=2))
        assert stats.messages == 5

    @pytest.mark.parametrize("p", [2, 4, 7])
    def test_gather_message_count(self, p):
        stats = run_collective(p, lambda mpi: mpi.gather(100, root=0))
        assert stats.messages == p - 1

    def test_gather_bytes_mirror_scatter(self):
        s = run_collective(8, lambda mpi: mpi.scatter(50, root=0))
        g = run_collective(8, lambda mpi: mpi.gather(50, root=0))
        assert g.bytes == pytest.approx(s.bytes)


class TestReduceScatterScan:
    def test_reduce_scatter_pow2_rounds(self):
        stats = run_collective(8, lambda mpi: mpi.reduce_scatter(800))
        assert stats.messages == 8 * 3  # log2(8) halving rounds

    def test_reduce_scatter_pow2_bytes_halve(self):
        stats = run_collective(4, lambda mpi: mpi.reduce_scatter(400))
        # Each rank: 200 + 100 bytes over 2 rounds.
        assert stats.bytes == pytest.approx(4 * 300)

    def test_reduce_scatter_non_pow2_fallback(self):
        stats = run_collective(6, lambda mpi: mpi.reduce_scatter(600))
        assert stats.messages == 6 * 5  # pairwise exchange

    def test_scan_message_count(self):
        # Hillis-Steele over P=8: round k has (P - 2^k) senders.
        stats = run_collective(8, lambda mpi: mpi.scan(64))
        assert stats.messages == (8 - 1) + (8 - 2) + (8 - 4)

    def test_scan_completes_any_p(self):
        for p in (2, 3, 5):
            stats = run_collective(p, lambda mpi: mpi.scan(8))
            assert stats.time_s > 0

    def test_single_rank_noop(self):
        for op in (lambda m: m.scatter(8), lambda m: m.gather(8),
                   lambda m: m.reduce_scatter(8), lambda m: m.scan(8)):
            stats = run_collective(1, op)
            assert stats.messages == 0
