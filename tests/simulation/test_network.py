"""Tests for the network models built from host-switch graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hostswitch import HostSwitchGraph
from repro.simulation.engine import Event, Kernel
from repro.simulation.network import (
    FluidNetworkModel,
    LatencyOnlyNetworkModel,
    NetworkParams,
    build_network,
)


@pytest.fixture
def line_graph() -> HostSwitchGraph:
    # h0 - s0 - s1 - s2 - h1 ; plus h2 on s0.
    return HostSwitchGraph.from_edges(3, 4, [(0, 1), (1, 2)], [0, 2, 0])


def delivery_time(kernel: Kernel, net, src: int, dst: int, nbytes: float) -> float:
    ev = Event()
    times: list[float] = []
    ev.on_fire(lambda _v: times.append(kernel.now))
    net.send(src, dst, nbytes, ev)
    kernel.run()
    return times[0]


class TestLatencyOnly:
    def test_delivery_time_formula(self, line_graph):
        k = Kernel()
        params = NetworkParams(
            bandwidth_bytes_per_s=1e6, link_latency_s=1e-3, software_overhead_s=1e-4
        )
        net = LatencyOnlyNetworkModel(line_graph, k, params)
        # h0 (s0) -> h1 (s2): 4 links (up, s0-s1, s1-s2, down).
        t = delivery_time(k, net, 0, 1, 1000.0)
        assert t == pytest.approx(1e-4 + 4 * 1e-3 + 1000.0 / 1e6)

    def test_same_switch_hosts_two_links(self, line_graph):
        k = Kernel()
        params = NetworkParams(bandwidth_bytes_per_s=1e6, link_latency_s=1e-3)
        net = LatencyOnlyNetworkModel(line_graph, k, params)
        t = delivery_time(k, net, 0, 2, 0.0)
        assert t == pytest.approx(params.software_overhead_s + 2 * 1e-3)

    def test_self_message_local_latency(self, line_graph):
        k = Kernel()
        net = LatencyOnlyNetworkModel(line_graph, k)
        t = delivery_time(k, net, 0, 0, 1e9)
        assert t == pytest.approx(net.params.local_copy_latency_s)


class TestFluidNetwork:
    def test_matches_latency_model_without_contention(self, line_graph):
        params = NetworkParams(bandwidth_bytes_per_s=1e6, link_latency_s=1e-3)
        k1, k2 = Kernel(), Kernel()
        t_fluid = delivery_time(
            k1, FluidNetworkModel(line_graph, k1, params), 0, 1, 5000.0
        )
        t_lat = delivery_time(
            k2, LatencyOnlyNetworkModel(line_graph, k2, params), 0, 1, 5000.0
        )
        assert t_fluid == pytest.approx(t_lat)

    def test_contention_slows_shared_link(self, line_graph):
        # Two messages simultaneously crossing s0->s1 share its capacity.
        params = NetworkParams(
            bandwidth_bytes_per_s=1e6, link_latency_s=0.0, software_overhead_s=0.0
        )
        k = Kernel()
        net = FluidNetworkModel(line_graph, k, params)
        e1, e2 = Event(), Event()
        times: list[float] = []
        e1.on_fire(lambda _v: times.append(k.now))
        e2.on_fire(lambda _v: times.append(k.now))
        net.send(0, 1, 1000.0, e1)  # h0 -> h1 over s0-s1-s2
        net.send(2, 1, 1000.0, e2)  # h2 -> h1 over the same switch path
        k.run()
        # Shared links halve the rate: 2 ms each instead of 1 ms.
        assert max(times) == pytest.approx(2e-3, rel=1e-6)

    def test_duplex_links_do_not_contend(self, line_graph):
        params = NetworkParams(
            bandwidth_bytes_per_s=1e6, link_latency_s=0.0, software_overhead_s=0.0
        )
        k = Kernel()
        net = FluidNetworkModel(line_graph, k, params)
        e1, e2 = Event(), Event()
        times: list[float] = []
        e1.on_fire(lambda _v: times.append(k.now))
        e2.on_fire(lambda _v: times.append(k.now))
        net.send(0, 1, 1000.0, e1)  # forward direction
        net.send(1, 0, 1000.0, e2)  # reverse direction, opposite links
        k.run()
        assert max(times) == pytest.approx(1e-3, rel=1e-6)

    def test_link_utilization_accumulates(self, line_graph):
        k = Kernel()
        net = FluidNetworkModel(line_graph, k)
        ev = Event()
        net.send(0, 1, 1000.0, ev)
        k.run()
        util = net.link_utilization()
        assert util.sum() == pytest.approx(4 * 1000.0, rel=1e-3)

    def test_route_cache_reused(self, line_graph):
        k = Kernel()
        net = FluidNetworkModel(line_graph, k)
        r1 = net.route_links(0, 1)
        r2 = net.route_links(0, 1)
        assert r1 is r2

    def test_stats_counters(self, line_graph):
        k = Kernel()
        net = FluidNetworkModel(line_graph, k)
        ev1, ev2 = Event(), Event()
        net.send(0, 1, 10.0, ev1)
        net.send(0, 0, 5.0, ev2)
        k.run()
        assert net.messages_sent == 2
        assert net.bytes_sent == 15.0


class TestBuildNetwork:
    def test_factory_dispatch(self, line_graph):
        k = Kernel()
        assert isinstance(build_network(line_graph, k, model="fluid"), FluidNetworkModel)
        assert isinstance(
            build_network(line_graph, k, model="latency"), LatencyOnlyNetworkModel
        )

    def test_unknown_model(self, line_graph):
        with pytest.raises(ValueError, match="unknown network model"):
            build_network(line_graph, Kernel(), model="quantum")

    def test_route_links_distinct_ids(self, line_graph):
        k = Kernel()
        net = build_network(line_graph, k)
        route = net.route_links(0, 1)
        assert len(set(route.tolist())) == len(route)
        assert len(route) == 4
