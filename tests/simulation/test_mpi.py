"""Tests for the MPI layer: p2p semantics, matching, requests, world runs."""

from __future__ import annotations

import pytest

from repro.core.hostswitch import HostSwitchGraph
from repro.simulation.mpi import ANY, MPIWorld, run_mpi_program
from repro.simulation.trace import DeadlockError
from repro.topologies import torus


@pytest.fixture
def net8() -> HostSwitchGraph:
    g, _ = torus(2, 2, 6, num_hosts=8, fill="round-robin")
    return g


class TestPointToPoint:
    def test_send_recv_metadata(self, net8):
        seen = {}

        def prog(mpi):
            if mpi.rank == 0:
                mpi.send(1, 4096, tag=7)
            elif mpi.rank == 1:
                msg = yield from mpi.recv(src=0, tag=7)
                seen["msg"] = msg
            return
            yield  # make every rank a generator

        run_mpi_program(net8, 2, prog)
        assert seen["msg"].src == 0
        assert seen["msg"].tag == 7
        assert seen["msg"].nbytes == 4096

    def test_recv_wildcards(self, net8):
        order = []

        def prog(mpi):
            if mpi.rank == 0:
                mpi.send(2, 10, tag=5)
            elif mpi.rank == 1:
                mpi.send(2, 20, tag=6)
            elif mpi.rank == 2:
                m1 = yield from mpi.recv(src=ANY, tag=ANY)
                m2 = yield from mpi.recv(src=ANY, tag=ANY)
                order.append({m1.src, m2.src})
            return
            yield

        run_mpi_program(net8, 3, prog)
        assert order == [{0, 1}]

    def test_tag_selectivity(self, net8):
        got = []

        def prog(mpi):
            if mpi.rank == 0:
                mpi.send(1, 1, tag=1)
                mpi.send(1, 2, tag=2)
            elif mpi.rank == 1:
                m2 = yield from mpi.recv(src=0, tag=2)
                m1 = yield from mpi.recv(src=0, tag=1)
                got.extend([m2.nbytes, m1.nbytes])
            return
            yield

        run_mpi_program(net8, 2, prog)
        assert got == [2, 1]

    def test_eager_send_does_not_block(self, net8):
        # Both ranks send first, then recv: fine under eager semantics.
        def prog(mpi):
            peer = 1 - mpi.rank
            if mpi.rank <= 1:
                mpi.send(peer, 100_000)
                yield from mpi.recv(src=peer)
            return
            yield

        stats = run_mpi_program(net8, 2, prog)
        assert stats.messages == 2

    def test_ssend_waits_for_delivery(self, net8):
        times = {}

        def prog(mpi):
            if mpi.rank == 0:
                yield from mpi.ssend(1, 5_000_000)
                times["send_done"] = mpi.now
            elif mpi.rank == 1:
                yield from mpi.recv(src=0)
                times["recv_done"] = mpi.now
            return
            yield

        run_mpi_program(net8, 2, prog)
        assert times["send_done"] == pytest.approx(times["recv_done"])

    def test_isend_wait(self, net8):
        def prog(mpi):
            if mpi.rank == 0:
                req = mpi.isend(1, 1000)
                yield from mpi.wait(req)
                assert req.complete
            elif mpi.rank == 1:
                yield from mpi.recv(src=0)
            return
            yield

        run_mpi_program(net8, 2, prog)

    def test_irecv_waitall(self, net8):
        def prog(mpi):
            if mpi.rank == 0:
                mpi.send(2, 1, tag=1)
            elif mpi.rank == 1:
                mpi.send(2, 1, tag=2)
            elif mpi.rank == 2:
                reqs = [mpi.irecv(src=0, tag=1), mpi.irecv(src=1, tag=2)]
                yield from mpi.waitall(reqs)
                assert all(r.complete for r in reqs)
            return
            yield

        run_mpi_program(net8, 3, prog)

    def test_sendrecv_exchange(self, net8):
        def prog(mpi):
            peer = 1 - mpi.rank
            if mpi.rank <= 1:
                msg = yield from mpi.sendrecv(peer, 500, src=peer)
                assert msg.src == peer
            return
            yield

        run_mpi_program(net8, 2, prog)


class TestComputeAndTime:
    def test_compute_charges_time(self, net8):
        def prog(mpi):
            yield from mpi.compute(1e9)  # 10 ms at 100 GFlops

        stats = run_mpi_program(net8, 4, prog)
        assert stats.time_s == pytest.approx(0.01)
        assert stats.mean_compute_s == pytest.approx(0.01)

    def test_sleep(self, net8):
        def prog(mpi):
            yield from mpi.sleep(0.5)

        stats = run_mpi_program(net8, 2, prog)
        assert stats.time_s == pytest.approx(0.5)


class TestWorldValidation:
    def test_too_many_ranks(self, net8):
        with pytest.raises(ValueError, match="hosts"):
            MPIWorld(net8, 99)

    def test_rank_map_must_be_injective(self, net8):
        with pytest.raises(ValueError, match="injective"):
            MPIWorld(net8, 2, rank_to_host=[0, 0])

    def test_rank_map_length(self, net8):
        with pytest.raises(ValueError, match="length"):
            MPIWorld(net8, 2, rank_to_host=[0, 1, 2])

    def test_invalid_destination_rank(self, net8):
        def prog(mpi):
            if mpi.rank == 0:
                mpi.send(5, 10)
            return
            yield

        with pytest.raises(ValueError, match="invalid destination"):
            run_mpi_program(net8, 2, prog)

    def test_deadlock_detection(self, net8):
        def prog(mpi):
            if mpi.rank == 0:
                yield from mpi.recv(src=1)  # never sent
            return
            yield

        with pytest.raises(DeadlockError, match="rank0"):
            run_mpi_program(net8, 2, prog)

    def test_stats_fields(self, net8):
        def prog(mpi):
            if mpi.rank == 0:
                mpi.send(1, 100)
            elif mpi.rank == 1:
                yield from mpi.recv(src=0)
            return
            yield

        stats = run_mpi_program(net8, 2, prog)
        assert stats.num_ranks == 2
        assert stats.messages == 1
        assert stats.bytes == 100
        assert 0 <= stats.communication_fraction <= 1
