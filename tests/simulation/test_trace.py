"""Tests for per-rank timeline tracing."""

from __future__ import annotations

import pytest

from repro.simulation.mpi import MPIWorld
from repro.simulation.trace import RankTimeline, TraceInterval, timeline_utilisation
from repro.topologies import torus


@pytest.fixture
def net():
    g, _ = torus(2, 2, 6, num_hosts=8, fill="round-robin")
    return g


def run_traced(graph, num_ranks, factory):
    world = MPIWorld(graph, num_ranks, trace=True)
    return world.run(factory)


class TestTracing:
    def test_disabled_by_default(self, net):
        world = MPIWorld(net, 2)

        def prog(mpi):
            yield from mpi.compute(1e8)

        stats = world.run(prog)
        assert stats.timelines is None

    def test_compute_intervals_recorded(self, net):
        def prog(mpi):
            yield from mpi.compute(1e9)  # 10 ms
            yield from mpi.compute(5e8)  # 5 ms

        stats = run_traced(net, 2, prog)
        assert stats.timelines is not None
        tl = stats.timelines[0]
        computes = [iv for iv in tl.intervals if iv.kind == "compute"]
        assert len(computes) == 2
        assert tl.time_in("compute") == pytest.approx(0.015)

    def test_recv_wait_recorded_with_source(self, net):
        def prog(mpi):
            if mpi.rank == 0:
                yield from mpi.compute(1e9)  # makes rank 1 wait ~10 ms
                mpi.send(1, 100)
            elif mpi.rank == 1:
                yield from mpi.recv(src=0)
            return
            yield

        stats = run_traced(net, 2, prog)
        waits = [iv for iv in stats.timelines[1].intervals if iv.kind == "recv-wait"]
        assert len(waits) == 1
        assert waits[0].duration_s == pytest.approx(0.01, rel=0.05)
        assert waits[0].detail == "src=0"

    def test_sleep_recorded(self, net):
        def prog(mpi):
            yield from mpi.sleep(0.25)

        stats = run_traced(net, 2, prog)
        assert stats.timelines[0].time_in("sleep") == pytest.approx(0.25)

    def test_instant_recv_not_traced_as_wait(self, net):
        def prog(mpi):
            if mpi.rank == 0:
                mpi.send(1, 10)
            elif mpi.rank == 1:
                yield from mpi.sleep(0.1)  # message surely arrived
                yield from mpi.recv(src=0)
            return
            yield

        stats = run_traced(net, 2, prog)
        waits = [iv for iv in stats.timelines[1].intervals if iv.kind == "recv-wait"]
        assert waits == []  # matched from the arrived queue, no blocking


class TestUtilisation:
    def test_fractions_sum_below_one(self, net):
        def prog(mpi):
            yield from mpi.compute(1e9)
            yield from mpi.barrier()

        stats = run_traced(net, 4, prog)
        fractions = timeline_utilisation(stats.timelines, stats.time_s)
        assert 0.0 < sum(fractions.values()) <= 1.0 + 1e-9
        assert fractions["compute"] > 0.5  # compute-dominated program

    def test_empty_inputs(self):
        assert timeline_utilisation([], 1.0) == {}
        assert timeline_utilisation([RankTimeline(0)], 0.0) == {}

    def test_interval_duration(self):
        iv = TraceInterval("compute", 1.0, 3.5)
        assert iv.duration_s == 2.5
