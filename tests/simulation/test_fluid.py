"""Tests for the max-min fair fluid scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.engine import Event, Kernel
from repro.simulation.fluid import FluidScheduler


def make(capacities):
    k = Kernel()
    sched = FluidScheduler(k, np.asarray(capacities, dtype=float))
    return k, sched


def finish_time(kernel: Kernel, event: Event) -> float:
    times = []
    event.on_fire(lambda _v: times.append(kernel.now))
    kernel.run()
    assert times, "flow never completed"
    return times[0]


class TestSingleFlow:
    def test_full_capacity(self):
        k, sched = make([100.0])
        ev = Event()
        sched.start_flow([0], 500.0, ev)
        assert finish_time(k, ev) == pytest.approx(5.0)

    def test_bottleneck_is_min_link(self):
        k, sched = make([100.0, 50.0, 200.0])
        ev = Event()
        sched.start_flow([0, 1, 2], 100.0, ev)
        assert finish_time(k, ev) == pytest.approx(2.0)

    def test_zero_size_completes_instantly(self):
        k, sched = make([10.0])
        ev = Event()
        sched.start_flow([0], 0.0, ev)
        assert ev.fired

    def test_empty_route_rejected(self):
        _, sched = make([10.0])
        with pytest.raises(ValueError):
            sched.start_flow([], 10.0, Event())

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            make([10.0, 0.0])


class TestSharing:
    def test_two_flows_share_equally(self):
        k, sched = make([100.0])
        e1, e2 = Event(), Event()
        sched.start_flow([0], 100.0, e1)
        sched.start_flow([0], 100.0, e2)
        t = []
        e2.on_fire(lambda _v: t.append(k.now))
        k.run()
        # Both share 50 each; both finish at 2.0.
        assert t[0] == pytest.approx(2.0)

    def test_remaining_flow_speeds_up_after_completion(self):
        k, sched = make([100.0])
        e1, e2 = Event(), Event()
        sched.start_flow([0], 50.0, e1)   # finishes at t=1 under sharing
        sched.start_flow([0], 150.0, e2)  # 50 by t=1, then 100 B/s
        t1 = []
        t2 = []
        e1.on_fire(lambda _v: t1.append(k.now))
        e2.on_fire(lambda _v: t2.append(k.now))
        k.run()
        assert t1[0] == pytest.approx(1.0)
        assert t2[0] == pytest.approx(2.0)

    def test_max_min_with_disjoint_bottlenecks(self):
        # Flow A uses link0 (cap 100) alone; flow B uses link0+link1 where
        # link1 has cap 10.  Max-min: B gets 10, A gets 90.
        k, sched = make([100.0, 10.0])
        ea, eb = Event(), Event()
        sched.start_flow([0], 90.0, ea)
        sched.start_flow([0, 1], 10.0, eb)
        ta, tb = [], []
        ea.on_fire(lambda _v: ta.append(k.now))
        eb.on_fire(lambda _v: tb.append(k.now))
        k.run()
        assert ta[0] == pytest.approx(1.0)
        assert tb[0] == pytest.approx(1.0)

    def test_late_arrival_reshares(self):
        k, sched = make([100.0])
        e1, e2 = Event(), Event()
        sched.start_flow([0], 100.0, e1)
        k.call_later(0.5, sched.start_flow, [0], 50.0, e2)
        t1 = []
        e1.on_fire(lambda _v: t1.append(k.now))
        k.run()
        # First 0.5 s alone (50 B), then shares 50/50 (50 B left -> 1 s).
        assert t1[0] == pytest.approx(1.5)

    def test_many_flows_fair_share(self):
        k, sched = make([100.0])
        events = [Event() for _ in range(10)]
        for ev in events:
            sched.start_flow([0], 10.0, ev)
        times = []
        for ev in events:
            ev.on_fire(lambda _v: times.append(k.now))
        k.run()
        assert all(t == pytest.approx(1.0) for t in times)


class TestAccounting:
    def test_counters(self):
        k, sched = make([100.0, 100.0])
        e1, e2 = Event(), Event()
        sched.start_flow([0], 30.0, e1)
        sched.start_flow([0, 1], 70.0, e2)
        k.run()
        assert sched.completed_flows == 2
        assert sched.total_bytes == pytest.approx(100.0)

    def test_link_bytes_tracks_traffic(self):
        k, sched = make([100.0, 100.0])
        ev = Event()
        sched.start_flow([0, 1], 40.0, ev)
        k.run()
        assert sched.link_bytes[0] == pytest.approx(40.0, abs=1e-3)
        assert sched.link_bytes[1] == pytest.approx(40.0, abs=1e-3)

    def test_num_active_lifecycle(self):
        k, sched = make([100.0])
        ev = Event()
        sched.start_flow([0], 100.0, ev)
        assert sched.num_active == 1
        k.run()
        assert sched.num_active == 0

    def test_slot_growth_beyond_initial(self):
        # More concurrent flows than the initial slot pool.
        k, sched = make([1000.0])
        events = [Event() for _ in range(200)]
        for ev in events:
            sched.start_flow([0], 5.0, ev)
        k.run()
        assert sched.completed_flows == 200
        assert sched.total_bytes == pytest.approx(1000.0)
