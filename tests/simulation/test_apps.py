"""Tests for the NAS benchmark skeletons and the runner."""

from __future__ import annotations

import pytest

from repro.simulation.apps import available_benchmarks, get_benchmark, run_nas
from repro.simulation.apps.base import factor_2d, factor_3d, require_square
from repro.simulation.mapping import rank_to_host_mapping
from repro.topologies import torus


@pytest.fixture(scope="module")
def net():
    g, _ = torus(2, 4, 8, num_hosts=64, fill="round-robin")
    return g


class TestHelpers:
    def test_factor_2d(self):
        assert factor_2d(16) == (4, 4)
        assert factor_2d(64) == (8, 8)
        assert factor_2d(8) == (2, 4)
        assert factor_2d(7) == (1, 7)

    def test_factor_3d(self):
        assert factor_3d(8) == (2, 2, 2)
        assert factor_3d(64) == (4, 4, 4)
        assert sorted(factor_3d(16)) == [2, 2, 4]

    def test_require_square(self):
        assert require_square(16, "x") == 4
        with pytest.raises(ValueError):
            require_square(8, "x")


class TestRegistry:
    def test_all_eight_registered(self):
        assert available_benchmarks() == ["bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"]

    def test_get_benchmark_configures(self):
        b = get_benchmark("ft", nas_class="B", iterations=3)
        assert b.name == "FT"
        assert b.nas_class == "B"
        assert b.iterations == 3

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            get_benchmark("hpl")

    def test_unknown_class(self):
        with pytest.raises(ValueError, match="classes"):
            get_benchmark("ft", nas_class="Z")

    def test_default_iterations_per_class(self):
        assert get_benchmark("ft", nas_class="A").iterations == 6
        assert get_benchmark("ft", nas_class="B").iterations == 20
        assert get_benchmark("cg", nas_class="B").iterations == 75


class TestRuns:
    @pytest.mark.parametrize("name", ["ep", "is", "ft", "mg", "cg", "lu", "bt", "sp"])
    def test_every_benchmark_completes_16_ranks(self, net, name):
        res = run_nas(name, net, 16, nas_class="A", iterations=1)
        assert res.time_s > 0
        assert res.mops_total > 0
        assert res.stats.num_ranks == 16

    def test_square_rank_requirement_enforced(self, net):
        for name in ("cg", "lu", "bt", "sp"):
            with pytest.raises(ValueError):
                run_nas(name, net, 8, nas_class="A", iterations=1)

    def test_mg_power_of_two_requirement(self, net):
        with pytest.raises(ValueError, match="power-of-two"):
            run_nas("mg", net, 12, nas_class="A", iterations=1)

    def test_class_b_moves_more_bytes(self, net):
        a = run_nas("ft", net, 16, nas_class="A", iterations=1)
        b = run_nas("ft", net, 16, nas_class="B", iterations=1)
        assert b.stats.bytes > a.stats.bytes

    def test_more_iterations_more_time(self, net):
        one = run_nas("is", net, 16, nas_class="A", iterations=1)
        three = run_nas("is", net, 16, nas_class="A", iterations=3)
        assert three.time_s > one.time_s
        # Mop/s normalises by work, so rates should be comparable (within 3x).
        assert 0.3 < three.mops_total / one.mops_total < 3.0

    def test_ep_is_topology_insensitive(self):
        small, _ = torus(2, 4, 8, num_hosts=16, fill="round-robin")
        linear = run_nas("ep", small, 16, iterations=1,
                         rank_to_host=rank_to_host_mapping(small, 16, "linear"))
        rnd = run_nas("ep", small, 16, iterations=1,
                      rank_to_host=rank_to_host_mapping(small, 16, "random", seed=1))
        assert linear.time_s == pytest.approx(rnd.time_s, rel=0.02)

    def test_latency_model_faster_to_simulate_same_shape(self, net):
        fluid = run_nas("mg", net, 16, iterations=1, model="fluid")
        lat = run_nas("mg", net, 16, iterations=1, model="latency")
        # Contention can only slow things down.
        assert lat.time_s <= fluid.time_s * 1.001

    def test_benchmark_instance_reuse(self, net):
        bench = get_benchmark("ep", nas_class="A")
        r1 = run_nas(bench, net, 16)
        r2 = run_nas(bench, net, 16)
        assert r1.time_s == pytest.approx(r2.time_s)


class TestMapping:
    def test_linear_mapping_identity(self, net):
        assert rank_to_host_mapping(net, 8, "linear") == list(range(8))

    def test_dfs_mapping_groups_by_switch(self, net):
        mapping = rank_to_host_mapping(net, net.num_hosts, "dfs")
        assert sorted(mapping) == list(range(net.num_hosts))
        # Consecutive ranks on the same or adjacent switch most of the time.
        switches = [net.host_attachment(h) for h in mapping]
        same_or_new = sum(1 for a, b in zip(switches, switches[1:]) if a == b)
        assert same_or_new > 0

    def test_random_mapping_seeded(self, net):
        a = rank_to_host_mapping(net, 16, "random", seed=5)
        b = rank_to_host_mapping(net, 16, "random", seed=5)
        assert a == b
        assert len(set(a)) == 16

    def test_too_many_ranks(self, net):
        with pytest.raises(ValueError, match="exceed"):
            rank_to_host_mapping(net, net.num_hosts + 1, "dfs")

    def test_unknown_strategy(self, net):
        with pytest.raises(ValueError, match="unknown mapping"):
            rank_to_host_mapping(net, 4, "teleport")
