"""Tests for the DES kernel and generator processes."""

from __future__ import annotations

import pytest

from repro.simulation.engine import Event, Kernel


class TestKernelScheduling:
    def test_events_fire_in_time_order(self):
        k = Kernel()
        log = []
        k.call_later(2.0, log.append, "b")
        k.call_later(1.0, log.append, "a")
        k.call_later(3.0, log.append, "c")
        k.run()
        assert log == ["a", "b", "c"]
        assert k.now == 3.0

    def test_fifo_at_same_timestamp(self):
        k = Kernel()
        log = []
        k.call_later(1.0, log.append, 1)
        k.call_later(1.0, log.append, 2)
        k.run()
        assert log == [1, 2]

    def test_call_at_absolute(self):
        k = Kernel()
        k.call_at(5.0, lambda: None)
        assert k.run() == 5.0

    def test_negative_delay_rejected(self):
        k = Kernel()
        with pytest.raises(ValueError):
            k.call_later(-1.0, lambda: None)

    def test_past_schedule_rejected(self):
        k = Kernel()
        k.call_later(2.0, lambda: k.call_at(1.0, lambda: None))
        with pytest.raises(ValueError):
            k.run()

    def test_run_until_stops_clock(self):
        k = Kernel()
        fired = []
        k.call_later(10.0, fired.append, 1)
        assert k.run(until=5.0) == 5.0
        assert fired == []


class TestProcesses:
    def test_sleep_advances_time(self):
        k = Kernel()

        def prog():
            yield 1.5
            yield 2.5
            return "done"

        proc = k.spawn(prog())
        k.run()
        assert proc.done
        assert proc.result == "done"
        assert k.now == 4.0

    def test_none_yield_resumes_immediately(self):
        k = Kernel()

        def prog():
            yield None
            yield 1.0

        k.spawn(prog())
        assert k.run() == 1.0

    def test_event_wait_and_value(self):
        k = Kernel()
        ev = Event()
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        def firer():
            yield 2.0
            ev.fire("payload")

        k.spawn(waiter())
        k.spawn(firer())
        k.run()
        assert got == ["payload"]

    def test_wait_on_fired_event_is_instant(self):
        k = Kernel()
        ev = Event()
        ev.fire(42)

        def prog():
            value = yield ev
            assert value == 42

        proc = k.spawn(prog())
        k.run()
        assert proc.done

    def test_done_event_chains_processes(self):
        k = Kernel()
        order = []

        def first():
            yield 1.0
            order.append("first")

        def second(dep):
            yield dep.done_event
            order.append("second")

        p1 = k.spawn(first())
        k.spawn(second(p1))
        k.run()
        assert order == ["first", "second"]

    def test_yield_from_composition(self):
        k = Kernel()

        def inner():
            yield 1.0
            return 7

        def outer():
            value = yield from inner()
            yield value  # sleeps 7 more
            return value

        proc = k.spawn(outer())
        k.run()
        assert proc.result == 7
        assert k.now == 8.0

    def test_bad_yield_type_raises(self):
        k = Kernel()

        def prog():
            yield "nonsense"

        k.spawn(prog())
        with pytest.raises(TypeError, match="unsupported"):
            k.run()

    def test_all_done_tracking(self):
        k = Kernel()
        ev = Event()  # never fired

        def stuck():
            yield ev

        k.spawn(stuck())
        k.run()
        assert not k.all_done()


class TestEvent:
    def test_double_fire_rejected(self):
        ev = Event()
        ev.fire()
        with pytest.raises(RuntimeError):
            ev.fire()

    def test_callbacks_run_before_waiters(self):
        k = Kernel()
        order = []
        ev = Event()
        ev.on_fire(lambda _v: order.append("callback"))

        def waiter():
            yield ev
            order.append("waiter")

        k.spawn(waiter())
        k.call_later(1.0, ev.fire, None)
        k.run()
        assert order == ["callback", "waiter"]

    def test_on_fire_after_fired_runs_now(self):
        ev = Event()
        ev.fire("x")
        got = []
        ev.on_fire(got.append)
        assert got == ["x"]
