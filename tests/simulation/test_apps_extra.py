"""Additional app-layer tests: class C, routing passthrough, scaling."""

from __future__ import annotations

import pytest

from repro.simulation.apps import get_benchmark, run_nas
from repro.topologies import torus


@pytest.fixture(scope="module")
def net():
    g, _ = torus(2, 3, 10, num_hosts=36, fill="round-robin")
    return g


class TestClassC:
    def test_class_c_accepted_everywhere(self):
        for name in ("ep", "is", "ft", "mg", "cg", "lu", "bt", "sp"):
            bench = get_benchmark(name, nas_class="C")
            assert bench.nas_class == "C"
            assert bench.total_flops(16) > get_benchmark(name, nas_class="A").total_flops(16)

    def test_class_c_runs(self, net):
        res = run_nas("ep", net, 16, nas_class="C", iterations=1)
        assert res.nas_class == "C"
        assert res.time_s > 0

    def test_mg_class_c_uses_larger_grid(self):
        a = get_benchmark("mg", nas_class="A")
        c = get_benchmark("mg", nas_class="C")
        assert c.total_flops(16) / c.iterations > a.total_flops(16) / a.iterations

    def test_unsupported_class_rejected(self):
        with pytest.raises(ValueError, match="classes"):
            get_benchmark("ep", nas_class="D")


class TestRoutingPassthrough:
    def test_run_nas_with_ecmp(self, net):
        res = run_nas("mg", net, 16, nas_class="A", iterations=1,
                      routing="ecmp", routing_seed=1)
        assert res.time_s > 0

    def test_run_nas_with_valiant_slower_or_equal(self, net):
        det = run_nas("lu", net, 16, nas_class="A", iterations=1,
                      model="latency")
        val = run_nas("lu", net, 16, nas_class="A", iterations=1,
                      model="latency", routing="valiant", routing_seed=2)
        # Valiant paths are never shorter, so the contention-free time
        # cannot drop.
        assert val.time_s >= det.time_s * 0.999

    def test_invalid_routing_rejected(self, net):
        with pytest.raises(ValueError, match="routing"):
            run_nas("ep", net, 4, routing="warp")


class TestIterationOverrides:
    def test_explicit_iterations_respected(self):
        bench = get_benchmark("ft", nas_class="B", iterations=2)
        assert bench.iterations == 2

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError, match="iterations"):
            get_benchmark("ft", iterations=0)

    def test_flops_scale_with_iterations(self):
        one = get_benchmark("is", iterations=1).total_flops(16)
        five = get_benchmark("is", iterations=5).total_flops(16)
        assert five == pytest.approx(5 * one)


class TestRankScaling:
    @pytest.mark.parametrize("ranks", [4, 16])
    def test_more_ranks_not_slower_for_compute_bound(self, net, ranks):
        res = run_nas("ep", net, ranks, nas_class="A", iterations=1)
        # EP is compute bound: time ~ 1/ranks.
        expected = get_benchmark("ep").total_flops(ranks) / ranks / 100e9
        assert res.time_s == pytest.approx(expected, rel=0.05)

    def test_parallel_efficiency_definition(self, net):
        r4 = run_nas("mg", net, 4, nas_class="A", iterations=1)
        r16 = run_nas("mg", net, 16, nas_class="A", iterations=1)
        # Same total work; more ranks should not increase wall time much.
        assert r16.time_s < r4.time_s * 1.5
