"""Tests for synthetic traffic patterns and the latency/throughput harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.traffic import (
    TrafficResult,
    _destination,
    available_patterns,
    run_traffic,
)
from repro.topologies import torus


@pytest.fixture(scope="module")
def net():
    g, _ = torus(2, 3, 8, num_hosts=36, fill="round-robin")
    return g


class TestDestinations:
    def test_uniform_never_self(self):
        rng = np.random.default_rng(0)
        for src in range(16):
            for _ in range(20):
                assert _destination("uniform", src, 16, rng, 0.0) != src

    def test_transpose_is_involution(self):
        rng = np.random.default_rng(0)
        n = 16
        for src in range(n):
            dst = _destination("transpose", src, n, rng, 0.0)
            back = _destination("transpose", dst, n, rng, 0.0)
            assert back == src

    def test_transpose_requires_square(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="square"):
            _destination("transpose", 0, 12, rng, 0.0)

    def test_bit_reversal_is_involution_pow2(self):
        rng = np.random.default_rng(0)
        n = 32
        for src in range(n):
            dst = _destination("bit_reversal", src, n, rng, 0.0)
            assert _destination("bit_reversal", dst, n, rng, 0.0) == src

    def test_bit_complement_pow2(self):
        rng = np.random.default_rng(0)
        assert _destination("bit_complement", 0, 16, rng, 0.0) == 15
        assert _destination("bit_complement", 5, 16, rng, 0.0) == 10

    def test_neighbor_ring(self):
        rng = np.random.default_rng(0)
        assert _destination("neighbor", 7, 8, rng, 0.0) == 0

    def test_hotspot_bias(self):
        rng = np.random.default_rng(0)
        hits = sum(
            _destination("hotspot", 5, 16, rng, 0.5) == 0 for _ in range(400)
        )
        assert hits > 120  # ~200 expected at fraction 0.5

    def test_unknown_pattern(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="unknown pattern"):
            _destination("chaos", 0, 8, rng, 0.0)

    def test_catalogue(self):
        assert "uniform" in available_patterns()
        assert len(available_patterns()) == 6


class TestRunTraffic:
    def test_all_messages_delivered(self, net):
        res = run_traffic(net, "uniform", messages_per_host=5, seed=0)
        assert len(res.latencies_s) == 36 * 5
        assert res.mean_latency_s > 0
        assert res.p99_latency_s >= res.mean_latency_s
        assert res.throughput_bytes_per_s > 0

    def test_higher_load_higher_latency(self, net):
        low = run_traffic(net, "uniform", messages_per_host=10, offered_load=0.1, seed=1)
        high = run_traffic(net, "uniform", messages_per_host=10, offered_load=0.9, seed=1)
        assert high.mean_latency_s >= low.mean_latency_s

    def test_hotspot_worse_than_uniform(self, net):
        uni = run_traffic(net, "uniform", messages_per_host=10, offered_load=0.5, seed=2)
        hot = run_traffic(
            net, "hotspot", messages_per_host=10, offered_load=0.5,
            hotspot_fraction=0.5, seed=2,
        )
        assert hot.mean_latency_s > uni.mean_latency_s

    def test_deterministic_under_seed(self, net):
        a = run_traffic(net, "uniform", messages_per_host=5, seed=9)
        b = run_traffic(net, "uniform", messages_per_host=5, seed=9)
        assert a.mean_latency_s == b.mean_latency_s

    def test_latency_model_lower_bound(self, net):
        fluid = run_traffic(net, "uniform", messages_per_host=5, seed=3, model="fluid")
        free = run_traffic(net, "uniform", messages_per_host=5, seed=3, model="latency")
        # Removing contention can only reduce latencies.
        assert free.mean_latency_s <= fluid.mean_latency_s + 1e-12

    def test_invalid_load(self, net):
        with pytest.raises(ValueError, match="offered_load"):
            run_traffic(net, "uniform", offered_load=0.0)
        with pytest.raises(ValueError, match="messages_per_host"):
            run_traffic(net, "uniform", messages_per_host=0)

    def test_result_dataclass_empty_safe(self):
        empty = TrafficResult("uniform", 4, 100.0, 0.5)
        assert empty.mean_latency_s == 0.0
        assert empty.p99_latency_s == 0.0
        assert empty.throughput_bytes_per_s == 0.0


class TestRoutingStrategies:
    def test_ecmp_paths_still_shortest_on_average(self, net):
        det = run_traffic(net, "uniform", messages_per_host=5, offered_load=0.05,
                          routing="shortest", seed=4)
        ecmp = run_traffic(net, "uniform", messages_per_host=5, offered_load=0.05,
                           routing="ecmp", seed=4)
        # At negligible load both see pure path latency: same mean within 10%.
        assert ecmp.mean_latency_s == pytest.approx(det.mean_latency_s, rel=0.1)

    def test_valiant_longer_paths_at_low_load(self, net):
        det = run_traffic(net, "uniform", messages_per_host=5, offered_load=0.05,
                          routing="shortest", seed=5)
        val = run_traffic(net, "uniform", messages_per_host=5, offered_load=0.05,
                          routing="valiant", seed=5)
        assert val.mean_latency_s > det.mean_latency_s

    def test_ecmp_helps_adversarial_traffic(self, net):
        det = run_traffic(net, "transpose", messages_per_host=10, offered_load=0.8,
                          routing="shortest", seed=6)
        ecmp = run_traffic(net, "transpose", messages_per_host=10, offered_load=0.8,
                           routing="ecmp", seed=6)
        assert ecmp.mean_latency_s < det.mean_latency_s

    def test_unknown_routing_rejected(self, net):
        with pytest.raises(ValueError, match="routing"):
            run_traffic(net, "uniform", routing="psychic")


class TestValiantRoute:
    def test_route_structure(self, net):
        from repro.routing import RoutingTables, valiant_switch_route

        tables = RoutingTables(net)
        route = valiant_switch_route(tables, 0, 5, rng=0)
        assert route[0] == 0 and route[-1] == 5
        # Every hop is an edge.
        for a, b in zip(route, route[1:]):
            assert net.has_switch_edge(a, b)

    def test_route_at_least_shortest(self, net):
        from repro.routing import RoutingTables, valiant_switch_route

        tables = RoutingTables(net)
        rng = np.random.default_rng(1)
        for _ in range(20):
            u, v = rng.integers(0, net.num_switches, size=2)
            route = valiant_switch_route(tables, int(u), int(v), rng=rng)
            assert len(route) - 1 >= tables.distance(int(u), int(v))
