"""Tests for floorplan, cabling, power, and cost models."""

from __future__ import annotations

import pytest

from repro.core.hostswitch import HostSwitchGraph
from repro.layout import (
    Cable,
    CableKind,
    CostModel,
    Floorplan,
    PowerModel,
    enumerate_cables,
    network_cost,
    network_power,
)
from repro.layout.cables import classify_cable
from repro.layout.floorplan import CABINET_DEPTH_M, CABINET_WIDTH_M
from repro.topologies import torus


@pytest.fixture
def small_graph() -> HostSwitchGraph:
    return HostSwitchGraph.from_edges(
        4, 6, [(0, 1), (1, 2), (2, 3), (3, 0)], [0, 0, 1, 2, 3]
    )


class TestFloorplan:
    def test_one_switch_per_cabinet(self, small_graph):
        plan = Floorplan(small_graph)
        assert plan.num_cabinets == 4
        assert plan.cabinet_of == [0, 1, 2, 3]

    def test_multiple_switches_per_cabinet(self, small_graph):
        plan = Floorplan(small_graph, switches_per_cabinet=2)
        assert plan.num_cabinets == 2
        assert plan.cabinet_of == [0, 0, 1, 1]

    def test_same_cabinet_cable_is_short(self, small_graph):
        plan = Floorplan(small_graph, switches_per_cabinet=2)
        assert plan.switch_cable_length_m(0, 1) == plan.intra_cabinet_m

    def test_cross_cabinet_length_manhattan(self, small_graph):
        plan = Floorplan(small_graph)
        d = plan.cabinet_distance_m(0, 1)
        assert d > 0
        assert plan.switch_cable_length_m(0, 1) == d + 2 * plan.intra_cabinet_m

    def test_grid_positions_distinct(self, small_graph):
        plan = Floorplan(small_graph)
        assert len(set(plan.positions)) == plan.num_cabinets

    def test_grid_aspect_near_square(self):
        g, _ = torus(2, 6, 8, num_hosts=36)
        plan = Floorplan(g)
        xs = [p[0] for p in plan.positions]
        ys = [p[1] for p in plan.positions]
        width = max(xs) + CABINET_WIDTH_M / 2
        depth = max(ys) + CABINET_DEPTH_M / 2
        assert 0.3 < width / depth < 3.0

    def test_dfs_ordering_shortens_cables_on_path(self):
        # A path graph: index order equals DFS order from 0, so total cable
        # lengths agree; on a shuffled-index path DFS must win.
        g = HostSwitchGraph(6, 4)
        order = [0, 3, 1, 5, 2, 4]
        for a, b in zip(order, order[1:]):
            g.add_switch_edge(a, b)
        for s in range(6):
            g.attach_host(s)
        naive = Floorplan(g, ordering="index").total_cable_length_m()
        dfs = Floorplan(g, ordering="dfs").total_cable_length_m()
        assert dfs <= naive

    def test_invalid_params(self, small_graph):
        with pytest.raises(ValueError):
            Floorplan(small_graph, switches_per_cabinet=0)
        with pytest.raises(ValueError):
            Floorplan(small_graph, ordering="spiral")


class TestCables:
    def test_classification_threshold(self):
        assert classify_cable(0.5) is CableKind.ELECTRICAL
        assert classify_cable(1.0) is CableKind.ELECTRICAL
        assert classify_cable(1.01) is CableKind.OPTICAL

    def test_enumerate_counts(self, small_graph):
        plan = Floorplan(small_graph)
        cables = enumerate_cables(small_graph, plan)
        assert len(cables) == small_graph.num_edges
        ss = [c for c in cables if c.endpoint[0] == "ss"]
        hs = [c for c in cables if c.endpoint[0] == "hs"]
        assert len(ss) == small_graph.num_switch_edges
        assert len(hs) == small_graph.num_hosts

    def test_host_cables_are_electrical(self, small_graph):
        plan = Floorplan(small_graph)
        for c in enumerate_cables(small_graph, plan):
            if c.endpoint[0] == "hs":
                assert c.kind is CableKind.ELECTRICAL


class TestPower:
    def test_switch_power_scales_with_ports(self):
        model = PowerModel()
        assert model.switch_power(10) > model.switch_power(2)

    def test_breakdown_total(self, small_graph):
        breakdown = network_power(small_graph)
        assert breakdown.total_w == breakdown.switches_w + breakdown.cables_w
        assert breakdown.switches_w > 0

    def test_optical_cables_add_power(self):
        g, _ = torus(2, 6, 8, num_hosts=36)  # big enough for long cables
        plan = Floorplan(g)
        zero_optics = network_power(g, plan, PowerModel(optical_cable_w=0.0))
        with_optics = network_power(g, plan, PowerModel(optical_cable_w=2.0))
        assert with_optics.cables_w > zero_optics.cables_w

    def test_power_increases_with_switch_count(self):
        small, _ = torus(2, 3, 8, num_hosts=9)
        large, _ = torus(2, 5, 8, num_hosts=9)
        assert network_power(large).switches_w > network_power(small).switches_w


class TestCost:
    def test_breakdown_parts(self, small_graph):
        breakdown = network_cost(small_graph)
        assert breakdown.total_usd == pytest.approx(
            breakdown.switches_usd
            + breakdown.electrical_cables_usd
            + breakdown.optical_cables_usd
        )
        assert breakdown.switches_usd > 0
        assert breakdown.electrical_cables_usd > 0

    def test_switch_cost_linear_in_radix(self):
        model = CostModel()
        c8 = model.switch_cost(8)
        c16 = model.switch_cost(16)
        assert c16 - c8 == pytest.approx(8 * model.switch_port_usd)

    def test_optical_premium_at_threshold(self):
        model = CostModel()
        short = Cable(("ss", 0, 1), 1.0, CableKind.ELECTRICAL)
        long = Cable(("ss", 0, 1), 1.1, CableKind.OPTICAL)
        assert model.cable_cost(long) > model.cable_cost(short)

    def test_larger_network_costs_more(self):
        small, _ = torus(2, 3, 8, num_hosts=9)
        large, _ = torus(2, 5, 8, num_hosts=25)
        assert network_cost(large).total_usd > network_cost(small).total_usd
