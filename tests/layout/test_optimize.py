"""Tests for the annealed cabinet-placement optimizer."""

from __future__ import annotations

import pytest

from repro.core.construct import random_host_switch_graph
from repro.layout import Floorplan, optimize_placement, placement_cable_cost
from repro.topologies import torus


class TestExplicitAssignment:
    def test_assignment_respected(self, fig1_graph):
        plan = Floorplan(fig1_graph, assignment=[3, 2, 1, 0])
        assert plan.cabinet_of == [3, 2, 1, 0]

    def test_capacity_enforced(self, fig1_graph):
        with pytest.raises(ValueError, match="over capacity"):
            Floorplan(fig1_graph, assignment=[0, 0, 1, 2])

    def test_length_validated(self, fig1_graph):
        with pytest.raises(ValueError, match="per switch"):
            Floorplan(fig1_graph, assignment=[0, 1])


class TestOptimizePlacement:
    def test_never_worse_than_start(self):
        g = random_host_switch_graph(40, 16, 6, seed=0)
        start = Floorplan(g, ordering="dfs")
        optimized = optimize_placement(g, num_steps=2_000, seed=1)
        assert placement_cable_cost(g, optimized) <= placement_cable_cost(g, start) + 1e-6

    def test_improves_scrambled_torus(self):
        # A torus placed in index order is already well-laid-out along the
        # first dimensions; scramble it via a bad explicit start and check
        # the optimizer recovers a large part of the cost.
        g, _ = torus(2, 5, 8, num_hosts=25)
        index_cost = placement_cable_cost(g, Floorplan(g))
        optimized = optimize_placement(g, num_steps=4_000, seed=2, start="dfs")
        opt_cost = placement_cable_cost(g, optimized)
        # The optimizer should land within 25% of the natural embedding.
        assert opt_cost <= index_cost * 1.25

    def test_assignment_is_permutation(self):
        g = random_host_switch_graph(30, 12, 6, seed=3)
        plan = optimize_placement(g, num_steps=500, seed=3)
        assert sorted(plan.cabinet_of) == list(range(12))

    def test_capacity_preserved_with_shared_cabinets(self):
        g = random_host_switch_graph(30, 12, 6, seed=4)
        plan = optimize_placement(
            g, switches_per_cabinet=3, num_steps=500, seed=4
        )
        counts: dict[int, int] = {}
        for cab in plan.cabinet_of:
            counts[cab] = counts.get(cab, 0) + 1
        assert max(counts.values()) <= 3
        assert sum(counts.values()) == 12

    def test_deterministic_under_seed(self):
        g = random_host_switch_graph(24, 10, 6, seed=5)
        a = optimize_placement(g, num_steps=800, seed=9)
        b = optimize_placement(g, num_steps=800, seed=9)
        assert a.cabinet_of == b.cabinet_of

    def test_reduces_optical_cable_count_or_cost(self):
        from repro.layout import CableKind, enumerate_cables

        g = random_host_switch_graph(60, 24, 7, seed=6)
        start = Floorplan(g, ordering="index")
        optimized = optimize_placement(g, num_steps=3_000, seed=6, start="index")
        start_cost = placement_cable_cost(g, start)
        opt_cost = placement_cable_cost(g, optimized)
        assert opt_cost <= start_cost
        # On a random topology there is real slack to recover.
        assert opt_cost < start_cost * 0.995 or start_cost == opt_cost
