"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.hostswitch import HostSwitchGraph


@pytest.fixture
def fig1_graph() -> HostSwitchGraph:
    """A host-switch graph shaped like the paper's Fig. 1 regime.

    n = 16 hosts, m = 4 switches, r = 6: switches 0-3 in a 4-cycle with one
    diagonal pair each carrying hosts, chosen so distances are non-trivial
    (some host pairs at distance 2, some at 3, some at 4).
    """
    g = HostSwitchGraph(num_switches=4, radix=6)
    g.add_switch_edge(0, 1)
    g.add_switch_edge(1, 2)
    g.add_switch_edge(2, 3)
    g.add_switch_edge(3, 0)
    for s in range(4):
        for _ in range(4):
            g.attach_host(s)
    g.validate()
    return g


@pytest.fixture
def clique4_graph() -> HostSwitchGraph:
    """4 fully-connected switches, 3 hosts each (n=12, m=4, r=6)."""
    g = HostSwitchGraph(num_switches=4, radix=6)
    for a in range(4):
        for b in range(a + 1, 4):
            g.add_switch_edge(a, b)
    for s in range(4):
        for _ in range(3):
            g.attach_host(s)
    g.validate()
    return g


def brute_force_h_aspl(graph: HostSwitchGraph) -> float:
    """Oracle h-ASPL: BFS over the full bipartite-ish vertex graph.

    Deliberately naive (adjacency dict over ("h", i) / ("s", j) vertices,
    plain BFS per host) so it shares no code with the production metric.
    """
    from collections import deque

    adj: dict[tuple, list[tuple]] = {}
    for s in range(graph.num_switches):
        adj[("s", s)] = [("s", b) for b in graph.neighbors(s)]
    for h in range(graph.num_hosts):
        s = graph.host_attachment(h)
        adj[("h", h)] = [("s", s)]
        adj[("s", s)].append(("h", h))

    n = graph.num_hosts
    total = 0
    for h in range(n):
        dist = {("h", h): 0}
        queue = deque([("h", h)])
        while queue:
            v = queue.popleft()
            for w in adj[v]:
                if w not in dist:
                    dist[w] = dist[v] + 1
                    queue.append(w)
        for h2 in range(h + 1, n):
            total += dist[("h", h2)]
    return total / (n * (n - 1) / 2)
