"""Direct tests for helpers otherwise only exercised indirectly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hostswitch import HostSwitchGraph
from repro.partition.bisect import greedy_bisection, initial_bisection
from repro.partition.graph import WeightedGraph
from repro.partition.metrics import cut_size
from repro.topologies.base import TopologySpec, attach_hosts
from repro.topologies.dragonfly import dragonfly_switch_edges
from repro.topologies.fattree import fat_tree_switch_edges
from repro.topologies.hypercube import hypercube_switch_edges
from repro.topologies.mesh import mesh_switch_edges
from repro.topologies.slimfly import slim_fly_switch_edges
from repro.topologies.torus import torus_switch_edges


class TestAttachHosts:
    def test_unknown_strategy(self):
        g = HostSwitchGraph(2, 4)
        with pytest.raises(ValueError, match="unknown host fill"):
            attach_hosts(g, 2, "diagonal")

    def test_sequential_out_of_ports(self):
        g = HostSwitchGraph(1, 3)
        with pytest.raises(ValueError, match="out of ports"):
            attach_hosts(g, 4, "sequential")

    def test_round_robin_out_of_ports(self):
        g = HostSwitchGraph(2, 2)
        with pytest.raises(ValueError, match="out of ports"):
            attach_hosts(g, 5, "round-robin")


class TestSpecStr:
    def test_human_readable(self):
        spec = TopologySpec("torus", 27, 12, 108, {"K": 3, "N": 3})
        text = str(spec)
        assert "torus(K=3, N=3)" in text
        assert "m=27" in text and "r=12" in text and "n_max=108" in text


class TestEdgeListHelpers:
    def test_torus_edge_count(self):
        # K-ary N-torus: K * N^K edges for N > 2.
        assert len(torus_switch_edges(2, 4)) == 2 * 16
        assert len(torus_switch_edges(3, 3)) == 3 * 27
        # base 2: wrap edges coincide -> K * 2^K / 2... each dim gives
        # 2^(K-1) distinct edges.
        assert len(torus_switch_edges(3, 2)) == 3 * 4
        assert torus_switch_edges(1, 1) == []

    def test_mesh_edge_count(self):
        # K-dim mesh: K * (N-1) * N^(K-1).
        assert len(mesh_switch_edges(2, 4)) == 2 * 3 * 4
        assert len(mesh_switch_edges(3, 2)) == 3 * 1 * 4

    def test_hypercube_edge_count(self):
        assert len(hypercube_switch_edges(4)) == 4 * 16 // 2

    def test_fat_tree_edge_count(self):
        # K^2/2 pod edges per pod * K pods / ... total: K * (K/2)^2 + core.
        k = 4
        edges = fat_tree_switch_edges(k)
        # pod internal: K pods * (K/2)^2 ; core uplinks: (K/2)^2 * K.
        assert len(edges) == k * (k // 2) ** 2 + (k // 2) ** 2 * k

    def test_dragonfly_edge_count(self):
        a = 4
        g_count = a * (a // 2) + 1  # 9 groups
        intra = g_count * a * (a - 1) // 2
        inter = g_count * (g_count - 1) // 2
        assert len(dragonfly_switch_edges(a)) == intra + inter

    def test_slim_fly_edge_count(self):
        q = 5
        edges = slim_fly_switch_edges(q)
        degree = (3 * q - 1) // 2
        assert len(edges) == 2 * q * q * degree // 2


class TestBisectionHelpers:
    def ring(self, n):
        return WeightedGraph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])

    def test_greedy_bisection_hits_target_weight(self):
        g = self.ring(20)
        rng = np.random.default_rng(0)
        parts = greedy_bisection(g, target0=10.0, rng=rng)
        assert sum(1 for p in parts if p == 0) == 10

    def test_greedy_bisection_grows_contiguously_on_ring(self):
        g = self.ring(24)
        rng = np.random.default_rng(1)
        parts = greedy_bisection(g, target0=12.0, rng=rng)
        # A contiguous arc cuts exactly 2 edges.
        assert cut_size(g, parts) == 2

    def test_initial_bisection_beats_single_trial_or_ties(self):
        g = self.ring(32)
        one = initial_bisection(g, 16.0, seed=3, trials=1)
        many = initial_bisection(g, 16.0, seed=3, trials=5)
        assert cut_size(g, many) <= cut_size(g, one)


class TestCLIBuildParser:
    def test_parser_metadata(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.prog == "repro"
        # Every documented command parses.
        for argv in (["bounds", "8", "4"], ["solve", "8", "4"],
                     ["odp", "8", "3"], ["topology", "mesh"],
                     ["simulate", "ep"], ["traffic", "uniform"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]
