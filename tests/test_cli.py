"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestBounds:
    def test_prints_all_quantities(self, capsys):
        assert main(["bounds", "1024", "24"]) == 0
        out = capsys.readouterr().out
        assert "diameter lower bound" in out
        assert "h-ASPL lower bound" in out
        assert "m_opt" in out
        assert "79" in out  # known m_opt for (1024, 24)


class TestSolve:
    def test_solve_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "g.hsg"
        code = main(
            ["solve", "24", "8", "--steps", "150", "--seed", "1",
             "--out", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ORP(n=24, r=8)" in out
        assert out_file.exists()
        from repro import load_graph

        g = load_graph(out_file)
        assert g.num_hosts == 24

    def test_m_override(self, capsys):
        assert main(["solve", "24", "8", "--m", "10", "--steps", "100"]) == 0
        assert "m=10" in capsys.readouterr().out


class TestOdp:
    def test_odp_summary(self, capsys):
        assert main(["odp", "16", "4", "--steps", "150"]) == 0
        out = capsys.readouterr().out
        assert "ODP(n=16, d=4)" in out and "Moore bound" in out


class TestTopology:
    def test_torus(self, capsys):
        code = main(["topology", "torus", "--dimension", "2", "--base", "3",
                     "--radix", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "torus" in out and "h-ASPL" in out

    def test_fat_tree(self, capsys):
        assert main(["topology", "fat-tree", "--k", "4"]) == 0
        assert "fat-tree" in capsys.readouterr().out

    def test_dragonfly_with_hosts(self, capsys):
        assert main(["topology", "dragonfly", "--a", "4", "--hosts", "32"]) == 0
        assert "attached hosts: 32" in capsys.readouterr().out

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["topology", "klein-bottle"])

    def test_out_saves_graph(self, capsys, tmp_path):
        path = tmp_path / "torus.hsg"
        code = main(["topology", "torus", "--dimension", "2", "--base", "3",
                     "--radix", "8", "--out", str(path)])
        assert code == 0
        from repro import load_graph

        g = load_graph(path)
        assert g.num_switches == 9

    def test_hypercube_dimension_flag_maps_to_dim(self, capsys):
        assert main(["topology", "hypercube", "--dimension", "4",
                     "--radix", "10"]) == 0
        assert "hypercube" in capsys.readouterr().out

    def test_jellyfish_flags(self, capsys):
        code = main(["topology", "jellyfish", "--switches", "12", "--radix",
                     "8", "--hosts-per-switch", "3", "--seed", "2"])
        assert code == 0
        assert "attached hosts: 36" in capsys.readouterr().out


class TestSimulate:
    def test_default_network(self, capsys):
        assert main(["simulate", "ep", "--ranks", "16"]) == 0
        out = capsys.readouterr().out
        assert "EP class A" in out and "Mop/s" in out

    def test_loaded_graph(self, capsys, tmp_path):
        from repro import save_graph
        from repro.topologies import torus

        path = tmp_path / "net.hsg"
        save_graph(torus(2, 3, 8, num_hosts=18, fill="round-robin")[0], path)
        code = main(["simulate", "mg", "--graph", str(path), "--ranks", "16",
                     "--mapping", "linear"])
        assert code == 0
        assert "simulated time" in capsys.readouterr().out

    def test_routing_option(self, capsys):
        assert main(["simulate", "ep", "--ranks", "4", "--routing", "ecmp"]) == 0


class TestTraffic:
    def test_uniform(self, capsys):
        code = main(["traffic", "uniform", "--messages", "3", "--load", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean latency" in out and "throughput" in out

    def test_valiant_routing(self, capsys):
        assert main(["traffic", "uniform", "--messages", "2",
                     "--routing", "valiant"]) == 0


class TestCampaign:
    @pytest.fixture
    def spec_file(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "cli-unit",
            "grid": {"n": [24], "r": [6], "seed": [0, 1]},
            "defaults": {"steps": 300, "restarts": 2},
            "executor": {"checkpoint_every": 100},
        }))
        return path

    def test_run_status_report_cycle(self, capsys, tmp_path, spec_file):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", str(spec_file), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 point(s)" in out and "2 solved" in out

        # Warm re-run: everything served from the store.
        assert main(["campaign", "run", str(spec_file), "--store", store]) == 0
        assert "2 cached" in capsys.readouterr().out

        assert main(["campaign", "status", str(spec_file), "--store", store]) == 0
        assert "2 solved" in capsys.readouterr().out

        assert main(["campaign", "report", str(spec_file), "--store", store]) == 0
        assert "2/2 points solved" in capsys.readouterr().out

    def test_interrupted_run_exits_130_then_resumes(self, capsys, tmp_path,
                                                    spec_file):
        store = str(tmp_path / "store")
        code = main(["campaign", "run", str(spec_file), "--store", store,
                     "--stop-after-checkpoints", "2"])
        assert code == 130
        assert "resume to continue" in capsys.readouterr().out

        assert main(["campaign", "resume", str(spec_file), "--store", store]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", str(spec_file), "--store", store]) == 0
        assert "2 solved" in capsys.readouterr().out

    def test_resume_without_a_store_fails(self, tmp_path, spec_file):
        store = str(tmp_path / "missing")
        assert main(["campaign", "resume", str(spec_file),
                     "--store", store]) == 1

    def test_invalid_spec_exits_via_spec_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "grid": {"n": [8]}}')  # r missing
        from repro.campaign import SpecError

        with pytest.raises(SpecError):
            main(["campaign", "run", str(path)])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_available(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0


class TestTrafficFaults:
    def test_fault_flags_report_drops(self, capsys):
        code = main(["traffic", "uniform", "--messages", "3",
                     "--fail-links", "1", "--fail-switches", "1",
                     "--fault-seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults" in out
        assert "2 injected" in out

    def test_no_fault_flags_no_fault_line(self, capsys):
        assert main(["traffic", "uniform", "--messages", "3"]) == 0
        assert "injected" not in capsys.readouterr().out


class TestResilience:
    def test_random_graph_sweep(self, capsys):
        code = main(["resilience", "--n", "48", "--r", "6",
                     "--trials", "5", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline h-ASPL" in out
        assert "disconnection probability" in out

    def test_switch_mode_json(self, capsys):
        import json

        code = main(["resilience", "--n", "48", "--r", "6", "--mode", "switch",
                     "--trials", "4", "--seed", "2", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "switch"
        assert len(doc["connected_h_aspl"]) == 4

    def test_saved_graph_input(self, capsys, tmp_path):
        from repro import save_graph
        from repro.topologies import torus

        g, _ = torus(2, 4, 8, num_hosts=32, fill="round-robin")
        path = tmp_path / "g.npz"
        save_graph(g, path)
        assert main(["resilience", "--graph", str(path), "--trials", "3"]) == 0
        assert "degraded h-ASPL" in capsys.readouterr().out

    def test_requires_graph_or_n_r(self, capsys):
        assert main(["resilience", "--trials", "2"]) == 2


class TestTelemetryValidate:
    def test_clean_trace_exits_zero(self, capsys, tmp_path):
        import json

        trace = tmp_path / "run.jsonl"
        assert main(["solve", "24", "8", "--steps", "150", "--seed", "1",
                     "--telemetry-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["telemetry", "validate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "schema-valid" in out
        assert json.loads(trace.read_text().splitlines()[0])  # well-formed file

    def test_corrupt_trace_exits_nonzero_with_per_line_counts(self, capsys, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text(
            'not json at all\n'
            '{"schema": "wrong/v0", "kind": "event", "name": "x", "ts": 0}\n'
        )
        assert main(["telemetry", "validate", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "problem(s)" in out
        assert "line 1:" in out and "line 2:" in out
        assert "  line 1: 1 problem(s)" in out


class TestTelemetryAnalyze:
    @pytest.fixture()
    def trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(["solve", "24", "8", "--steps", "200", "--seed", "1",
                     "--restarts", "2", "--telemetry-out", str(path)]) == 0
        return path

    def test_analyze_renders_span_report(self, capsys, trace):
        capsys.readouterr()
        assert main(["telemetry", "analyze", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "span trees" in out
        assert "anneal.run" in out
        assert "critical path" in out

    def test_flamegraph_to_stdout_and_file(self, capsys, trace, tmp_path):
        capsys.readouterr()
        assert main(["telemetry", "flamegraph", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "anneal.run" in out
        folded = tmp_path / "stacks.folded"
        assert main(["telemetry", "flamegraph", str(trace),
                     "--out", str(folded)]) == 0
        lines = folded.read_text().splitlines()
        assert lines and all(len(line.rsplit(" ", 1)) == 2 for line in lines)
        # Folded values are integer microseconds (flamegraph.pl input).
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)


class TestTelemetryRegress:
    def _write_bench(self, path, seconds):
        import json

        path.write_text(json.dumps(
            {"schema": 2, "meta": {"git_commit": "test", "timestamp": None},
             "benchmarks": {name: {"seconds": s} for name, s in seconds.items()}}
        ))

    def test_clean_run_exits_zero(self, capsys, tmp_path):
        current, baseline = tmp_path / "cur.json", tmp_path / "base.json"
        self._write_bench(current, {"bench_x": 1.0})
        self._write_bench(baseline, {"bench_x": 1.0})
        assert main(["telemetry", "regress", str(current),
                     "--baseline", str(baseline)]) == 0
        assert "0/1 check(s) failed" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        current, baseline = tmp_path / "cur.json", tmp_path / "base.json"
        self._write_bench(current, {"bench_x": 2.0})
        self._write_bench(baseline, {"bench_x": 1.0})
        assert main(["telemetry", "regress", str(current),
                     "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "2.00x" in out

    def test_record_rolls_history_only_on_pass(self, capsys, tmp_path):
        import json

        current, slow = tmp_path / "cur.json", tmp_path / "slow.json"
        baseline = tmp_path / "base.json"
        history = tmp_path / "history.json"
        self._write_bench(current, {"bench_x": 1.0})
        self._write_bench(slow, {"bench_x": 9.0})
        self._write_bench(baseline, {"bench_x": 1.0})
        assert main(["telemetry", "regress", str(current),
                     "--baseline", str(baseline),
                     "--history", str(history), "--record"]) == 0
        assert len(json.loads(history.read_text())["entries"]) == 1
        # A failing run must not launder itself into the rolling baseline.
        assert main(["telemetry", "regress", str(slow),
                     "--baseline", str(baseline),
                     "--history", str(history), "--record"]) == 1
        assert len(json.loads(history.read_text())["entries"]) == 1


class TestMonitorCommand:
    def test_once_on_trace_file(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["solve", "24", "8", "--steps", "200", "--seed", "1",
                     "--restarts", "2", "--telemetry-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["monitor", str(trace), "--once"]) == 0
        out = capsys.readouterr().out
        assert "monitoring" in out
        assert "solver: restart 2/2 done" in out

    def test_once_on_campaign_store(self, capsys, tmp_path):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "cli-mon",
            "grid": {"n": [24], "r": [6], "seed": [0]},
            "defaults": {"steps": 200, "restarts": 1},
        }))
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec), "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["monitor", str(store / "cli-mon"), "--once"]) == 0
        out = capsys.readouterr().out
        assert "campaign cli-mon: 1/1 points done" in out
        assert "1 solved" in out

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["monitor", str(tmp_path / "nope"), "--once"])


class TestBoundsJson:
    def test_json_keys_and_values(self, capsys):
        import json

        assert main(["bounds", "1024", "24", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n"] == 1024 and data["r"] == 24
        assert data["m_opt"] == 79
        for key in ("diameter_lower_bound", "h_aspl_lower_bound",
                    "continuous_moore_bound", "shimizu_mori_bound",
                    "lacin_switch_count", "lacin_baseline"):
            assert key in data

    def test_json_inf_becomes_null(self, capsys):
        import json

        # LACIN cliques cap out at ((r+1)//2)((r+2)//2) hosts; (79, 8)
        # is over capacity, so the baseline is null, not "inf".
        assert main(["bounds", "79", "8", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["lacin_switch_count"] is None
        assert data["lacin_baseline"] is None

    def test_table_gains_new_rows(self, capsys):
        assert main(["bounds", "1024", "24"]) == 0
        out = capsys.readouterr().out
        assert "Shimizu-Mori d3 bound @ m_opt" in out
        assert "LACIN clique size" in out
        assert "LACIN baseline (achievable)" in out


class TestComposeCommand:
    def test_cold_then_warm(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        args = ["compose", "96", "12", "--block-hosts", "24",
                "--steps", "200", "--store", store]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "solved" in cold and "predicted h-ASPL" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "cached" in warm

    def test_json_output(self, capsys, tmp_path):
        import json

        assert main(["compose", "96", "12", "--block-hosts", "24",
                     "--steps", "200", "--store", str(tmp_path / "s"),
                     "--measure", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == "repro.compose.result/v1"
        assert data["n"] == 96 and data["copies"] == 4
        assert data["measured_h_aspl"] == data["predicted_h_aspl"]
        assert data["h_aspl_lower_bound"] <= data["measured_h_aspl"] + 1e-9

    def test_no_store_and_out(self, capsys, tmp_path):
        from repro.core.serialization import load_graph

        out_path = tmp_path / "fabric.json"
        assert main(["compose", "48", "10", "--block-hosts", "12",
                     "--steps", "200", "--no-store",
                     "--out", str(out_path)]) == 0
        graph = load_graph(out_path)
        assert graph.num_hosts == 48
        graph.validate()


class TestTopologyCompose:
    def test_builds_composed_fabric(self, capsys):
        assert main(["topology", "compose", "--copies", "3",
                     "--block-hosts", "12", "--radix", "10"]) == 0
        out = capsys.readouterr().out
        assert "compose(C=3, n_b=12, r_b=8)" in out
        assert "attached hosts: 36" in out


class TestCampaignReportBest:
    def test_best_column(self, capsys, tmp_path):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "cli-best",
            "grid": {"n": [24], "r": [6], "seed": [0]},
            "defaults": {"steps": 200, "restarts": 1},
        }))
        store = str(tmp_path / "store")
        assert main(["campaign", "run", str(spec), "--store", store]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", str(spec), "--store", store,
                     "--best"]) == 0
        out = capsys.readouterr().out
        assert "best(n,r)" in out
        assert "@" in out  # the point's own result is the best known
