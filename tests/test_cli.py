"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestBounds:
    def test_prints_all_quantities(self, capsys):
        assert main(["bounds", "1024", "24"]) == 0
        out = capsys.readouterr().out
        assert "diameter lower bound" in out
        assert "h-ASPL lower bound" in out
        assert "m_opt" in out
        assert "79" in out  # known m_opt for (1024, 24)


class TestSolve:
    def test_solve_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "g.hsg"
        code = main(
            ["solve", "24", "8", "--steps", "150", "--seed", "1",
             "--out", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ORP(n=24, r=8)" in out
        assert out_file.exists()
        from repro import load_graph

        g = load_graph(out_file)
        assert g.num_hosts == 24

    def test_m_override(self, capsys):
        assert main(["solve", "24", "8", "--m", "10", "--steps", "100"]) == 0
        assert "m=10" in capsys.readouterr().out


class TestOdp:
    def test_odp_summary(self, capsys):
        assert main(["odp", "16", "4", "--steps", "150"]) == 0
        out = capsys.readouterr().out
        assert "ODP(n=16, d=4)" in out and "Moore bound" in out


class TestTopology:
    def test_torus(self, capsys):
        code = main(["topology", "torus", "--dimension", "2", "--base", "3",
                     "--radix", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "torus" in out and "h-ASPL" in out

    def test_fat_tree(self, capsys):
        assert main(["topology", "fat-tree", "--k", "4"]) == 0
        assert "fat-tree" in capsys.readouterr().out

    def test_dragonfly_with_hosts(self, capsys):
        assert main(["topology", "dragonfly", "--a", "4", "--hosts", "32"]) == 0
        assert "attached hosts: 32" in capsys.readouterr().out

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["topology", "klein-bottle"])


class TestSimulate:
    def test_default_network(self, capsys):
        assert main(["simulate", "ep", "--ranks", "16"]) == 0
        out = capsys.readouterr().out
        assert "EP class A" in out and "Mop/s" in out

    def test_loaded_graph(self, capsys, tmp_path):
        from repro import save_graph
        from repro.topologies import torus

        path = tmp_path / "net.hsg"
        save_graph(torus(2, 3, 8, num_hosts=18, fill="round-robin")[0], path)
        code = main(["simulate", "mg", "--graph", str(path), "--ranks", "16",
                     "--mapping", "linear"])
        assert code == 0
        assert "simulated time" in capsys.readouterr().out

    def test_routing_option(self, capsys):
        assert main(["simulate", "ep", "--ranks", "4", "--routing", "ecmp"]) == 0


class TestTraffic:
    def test_uniform(self, capsys):
        code = main(["traffic", "uniform", "--messages", "3", "--load", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean latency" in out and "throughput" in out

    def test_valiant_routing(self, capsys):
        assert main(["traffic", "uniform", "--messages", "2",
                     "--routing", "valiant"]) == 0


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_available(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
