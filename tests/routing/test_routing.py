"""Tests for shortest-path routing tables and path extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import random_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import single_source_host_distances
from repro.routing import RoutingTables, host_path, switch_path


@pytest.fixture
def ring_tables(fig1_graph) -> RoutingTables:
    return RoutingTables(fig1_graph)


class TestTables:
    def test_distance_matches_metric(self, ring_tables):
        assert ring_tables.distance(0, 2) == 2
        assert ring_tables.distance(1, 1) == 0

    def test_next_hops_on_ring(self, ring_tables):
        # 0 -> 2 has two shortest routes: via 1 and via 3.
        assert ring_tables.next_hops(0, 2) == [1, 3]
        # 0 -> 1 is direct.
        assert ring_tables.next_hops(0, 1) == [1]
        assert ring_tables.next_hops(0, 0) == []

    def test_deterministic_next_hop_lowest_id(self, ring_tables):
        assert ring_tables.next_hop(0, 2) == 1

    def test_ecmp_next_hop_uses_rng(self, ring_tables):
        rng = np.random.default_rng(0)
        seen = {ring_tables.next_hop(0, 2, rng) for _ in range(50)}
        assert seen == {1, 3}

    def test_route_reaches_destination(self, ring_tables):
        route = ring_tables.switch_route(0, 2)
        assert route[0] == 0 and route[-1] == 2
        assert len(route) == 3

    def test_disconnected_graph_rejected(self):
        g = HostSwitchGraph.from_edges(3, 4, [(0, 1)], [0, 1, 2])
        with pytest.raises(ValueError, match="disconnected"):
            RoutingTables(g)

    def test_path_diversity_on_ring(self, ring_tables):
        assert ring_tables.path_diversity(0, 2) == 2
        assert ring_tables.path_diversity(0, 1) == 1
        assert ring_tables.path_diversity(0, 0) == 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 5_000))
    def test_routes_are_shortest(self, seed):
        g = random_host_switch_graph(20, 7, 8, seed=seed)
        tables = RoutingTables(g)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            u, v = rng.integers(0, 7, size=2)
            route = tables.switch_route(int(u), int(v))
            assert len(route) - 1 == tables.distance(int(u), int(v))
            for a, b in zip(route, route[1:]):
                assert g.has_switch_edge(a, b)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 5_000))
    def test_ecmp_routes_also_shortest(self, seed):
        g = random_host_switch_graph(20, 7, 8, seed=seed)
        tables = RoutingTables(g)
        for u in range(7):
            for v in range(7):
                route = tables.switch_route(u, v, rng=seed)
                assert len(route) - 1 == tables.distance(u, v)


class TestHostPaths:
    def test_host_path_structure(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        path = host_path(tables, 0, 15)
        assert path[0] == ("h", 0)
        assert path[-1] == ("h", 15)
        assert all(kind == "s" for kind, _ in path[1:-1])

    def test_host_path_length_equals_distance(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        d = single_source_host_distances(fig1_graph, 0)
        for h in range(1, fig1_graph.num_hosts):
            path = host_path(tables, 0, h)
            assert len(path) - 1 == d[h]

    def test_same_switch_hosts(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        path = host_path(tables, 0, 1)  # both on switch 0
        assert len(path) == 3

    def test_switch_path_wrapper(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        assert switch_path(tables, 1, 3) in ([1, 0, 3], [1, 2, 3])
