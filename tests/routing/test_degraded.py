"""Degraded-mode routing tables: faults, incremental repair, diversity.

The core property here is the PR's acceptance criterion: incremental
``apply_fault``/``repair`` on a degraded :class:`RoutingTables` must be
bit-identical to rebuilding the tables from scratch on the faulted graph,
over hundreds of random fault/repair sequences.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construct import random_regular_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import switch_distance_matrix
from repro.faults import link_down, switch_down
from repro.routing import RoutingTables, UnreachableError
from repro.routing.valiant import valiant_switch_route


def path_graph(num_switches: int, hosts_per_switch: int = 1) -> HostSwitchGraph:
    """A line of switches — maximal diameter, minimal diversity."""
    g = HostSwitchGraph(num_switches, radix=hosts_per_switch + 2)
    for s in range(num_switches - 1):
        g.add_switch_edge(s, s + 1)
    for s in range(num_switches):
        for _ in range(hosts_per_switch):
            g.attach_host(s)
    return g


def reference_state(tables: RoutingTables):
    """(distances, neighbour lists) rebuilt from scratch on the faulted graph.

    The faulted graph is the original minus every physically-down link and
    the dead switches' incident links (dead switches stay as isolated
    vertices so switch ids line up).
    """
    graph = tables.graph
    m = graph.num_switches
    down = set(tables.failed_links)
    for s in tables.dead_switches:
        for t in graph.neighbors(s):
            down.add((s, t) if s < t else (t, s))
    faulted = HostSwitchGraph(m, graph.radix)
    for a, b in graph.switch_edges():
        if ((a, b) if a < b else (b, a)) not in down:
            faulted.add_switch_edge(a, b)
    for h in range(graph.num_hosts):
        faulted.attach_host(graph.host_attachment(h))
    dist = switch_distance_matrix(faulted)
    nbrs = [sorted(faulted.neighbors(s)) for s in range(m)]
    return dist, nbrs


def assert_matches_rebuild(tables: RoutingTables) -> None:
    dist, nbrs = reference_state(tables)
    assert np.array_equal(tables._dist, dist), "distance matrix diverged"
    assert tables._nbrs == nbrs, "neighbour lists diverged"


class TestDegradedBasics:
    def test_default_mode_rejects_disconnected(self):
        g = HostSwitchGraph(2, radix=4)
        g.attach_host(0)
        g.attach_host(1)
        with pytest.raises(ValueError, match="disconnected"):
            RoutingTables(g)
        tables = RoutingTables(g, degraded=True)
        assert not tables.reachable(0, 1)
        assert tables.distance(0, 1) == float("inf")
        assert tables.next_hops(0, 1) == []

    def test_fault_api_requires_degraded(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        with pytest.raises(RuntimeError, match="degraded=True"):
            tables.fail_link(0, 1)
        with pytest.raises(RuntimeError, match="degraded=True"):
            tables.fail_switch(0)

    def test_unreachable_route_raises(self, fig1_graph):
        tables = RoutingTables(fig1_graph, degraded=True)
        # Cutting both ring links around switch 2 isolates it.
        tables.fail_link(1, 2)
        tables.fail_link(2, 3)
        assert not tables.reachable(0, 2)
        with pytest.raises(UnreachableError, match="unreachable"):
            tables.switch_route(0, 2)
        # The rest of the ring still routes.
        assert tables.switch_route(1, 3) in ([1, 0, 3],)

    def test_double_fault_and_bad_repair_rejected(self, fig1_graph):
        tables = RoutingTables(fig1_graph, degraded=True)
        tables.fail_link(0, 1)
        with pytest.raises(ValueError, match="already failed"):
            tables.fail_link(1, 0)
        with pytest.raises(ValueError, match="not failed"):
            tables.repair_link(1, 2)
        tables.fail_switch(3)
        with pytest.raises(ValueError, match="already dead"):
            tables.fail_switch(3)
        with pytest.raises(ValueError, match="not dead"):
            tables.repair_switch(2)

    def test_dead_switch_link_failure_is_recorded_not_physical(self, fig1_graph):
        tables = RoutingTables(fig1_graph, degraded=True)
        downed = tables.fail_switch(1)
        assert downed == [(0, 1), (1, 2)]
        # Link (0,1) is already physically down; the explicit failure is
        # recorded but changes nothing now...
        assert tables.fail_link(0, 1) == []
        # ...and keeps the link down when the switch comes back.
        restored = tables.repair_switch(1)
        assert restored == [(1, 2)]
        assert tables.failed_links == frozenset({(0, 1)})
        assert_matches_rebuild(tables)

    def test_apply_fault_and_repair_round_trip(self, fig1_graph):
        tables = RoutingTables(fig1_graph, degraded=True)
        baseline = tables._dist.copy()
        event = switch_down(0.0, 2)
        downed, restored = tables.apply_fault(event)
        assert downed and not restored
        downed, restored = tables.repair(event)
        assert restored and not downed
        assert np.array_equal(tables._dist, baseline)
        assert_matches_rebuild(tables)


class TestIncrementalMatchesRebuild:
    """Acceptance criterion: >= 200 random fault/repair sequences."""

    @pytest.mark.parametrize("graph_seed", range(4))
    def test_random_fault_repair_sequences(self, graph_seed):
        graph = random_regular_host_switch_graph(36, 12, 7, seed=graph_seed)
        tables = RoutingTables(graph, degraded=True)
        rng = np.random.default_rng(100 + graph_seed)
        edges = sorted(graph.switch_edges())
        outstanding = []  # FaultEvents currently applied, repairable
        checks = 0
        for step in range(60):
            repairable = len(outstanding) > 0
            if repairable and rng.random() < 0.45:
                event = outstanding.pop(int(rng.integers(len(outstanding))))
                tables.repair(event)
            elif rng.random() < 0.5:
                a, b = edges[int(rng.integers(len(edges)))]
                if (a, b) in tables.failed_links:
                    continue
                event = link_down(float(step), a, b)
                tables.apply_fault(event)
                outstanding.append(event)
            else:
                s = int(rng.integers(graph.num_switches))
                if s in tables.dead_switches:
                    continue
                event = switch_down(float(step), s)
                tables.apply_fault(event)
                outstanding.append(event)
            assert_matches_rebuild(tables)
            checks += 1
        # 4 graphs x >=50 verified transitions >= 200 sequences total.
        assert checks >= 50
        for event in reversed(outstanding):
            tables.repair(event)
        assert_matches_rebuild(tables)

    def test_repair_all_restores_pristine_state(self, fig1_graph):
        tables = RoutingTables(fig1_graph, degraded=True)
        pristine_dist = tables._dist.copy()
        pristine_nbrs = [list(n) for n in tables._nbrs]
        events = [link_down(0.0, 0, 1), switch_down(1.0, 2)]
        for event in events:
            tables.apply_fault(event)
        for event in reversed(events):
            tables.repair(event)
        assert np.array_equal(tables._dist, pristine_dist)
        assert tables._nbrs == pristine_nbrs
        assert tables.failed_links == frozenset()
        assert tables.dead_switches == frozenset()


class TestPathDiversity:
    def test_known_counts_on_ring(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        # Opposite corners of a 4-ring: two shortest paths.
        assert tables.path_diversity(0, 2) == 2
        assert tables.path_diversity(0, 1) == 1
        assert tables.path_diversity(0, 0) == 1

    def test_deep_path_graph_no_recursion_error(self):
        # Regression: the old recursive DP overflowed CPython's stack on
        # high-diameter fabrics.  2048 switches > the 1000-frame default.
        g = path_graph(2048)
        tables = RoutingTables(g)
        assert tables.path_diversity(0, g.num_switches - 1) == 1

    def test_diversity_zero_when_unreachable(self, fig1_graph):
        tables = RoutingTables(fig1_graph, degraded=True)
        tables.fail_link(1, 2)
        tables.fail_link(2, 3)
        assert tables.path_diversity(0, 2) == 0

    def test_grid_diversity_binomial(self):
        # 3x3 grid: corner-to-corner shortest paths = C(4, 2) = 6.
        g = HostSwitchGraph(9, radix=5)
        for r in range(3):
            for c in range(3):
                s = 3 * r + c
                if c < 2:
                    g.add_switch_edge(s, s + 1)
                if r < 2:
                    g.add_switch_edge(s, s + 3)
        g.attach_host(0)
        g.attach_host(8)
        tables = RoutingTables(g)
        assert tables.path_diversity(0, 8) == 6


class TestValiantSeeding:
    def test_rng_none_raises(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        with pytest.raises(ValueError, match="explicit rng"):
            valiant_switch_route(tables, 0, 2, rng=None)
        with pytest.raises(ValueError, match="explicit rng"):
            valiant_switch_route(tables, 0, 2)

    def test_int_seed_deterministic(self, fig1_graph):
        tables = RoutingTables(fig1_graph)
        a = valiant_switch_route(tables, 0, 2, rng=11)
        b = valiant_switch_route(tables, 0, 2, rng=11)
        assert a == b
        assert a[0] == 0 and a[-1] == 2
