"""Tests for distance-profile and link-load analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.paths import (
    distance_histogram,
    distance_profile,
    link_load_summary,
)
from repro.core.metrics import h_aspl


class TestDistanceHistogram:
    def test_fig1_ring_histogram(self, fig1_graph):
        # 4-cycle of switches, 4 hosts each: per source 3 at 2, 8 at 3, 4 at 4.
        hist = distance_histogram(fig1_graph)
        n = 16
        assert hist == {2: n * 3 // 2, 3: n * 8 // 2, 4: n * 4 // 2}

    def test_total_pairs(self, fig1_graph):
        hist = distance_histogram(fig1_graph)
        assert sum(hist.values()) == 16 * 15 // 2

    def test_mean_matches_h_aspl(self, fig1_graph):
        profile = distance_profile(fig1_graph)
        assert profile.mean == pytest.approx(h_aspl(fig1_graph))

    def test_profile_fields(self, clique4_graph):
        profile = distance_profile(clique4_graph)
        assert profile.diameter == 3
        assert profile.median in (2.0, 3.0)
        assert profile.fraction_within(3) == 1.0
        assert 0 < profile.fraction_within(2) < 1.0

    def test_fraction_monotone(self, fig1_graph):
        profile = distance_profile(fig1_graph)
        fracs = [profile.fraction_within(h) for h in range(2, 6)]
        assert fracs == sorted(fracs)
        assert fracs[-1] == 1.0


class TestLinkLoad:
    def test_even_load(self):
        summary = link_load_summary(np.full(10, 5.0))
        assert summary["imbalance"] == pytest.approx(1.0)
        assert summary["max"] == 5.0

    def test_hot_link(self):
        loads = np.asarray([1.0] * 9 + [10.0])
        summary = link_load_summary(loads)
        assert summary["imbalance"] > 5.0
        assert summary["p95"] >= 1.0

    def test_empty_and_zero(self):
        assert link_load_summary(np.zeros(4))["imbalance"] == 0.0
        assert link_load_summary(np.zeros(0))["max"] == 0.0

    def test_from_simulation(self, fig1_graph):
        from repro.simulation.engine import Event, Kernel
        from repro.simulation.network import FluidNetworkModel

        kernel = Kernel()
        net = FluidNetworkModel(fig1_graph, kernel)
        net.send(0, 15, 1000.0, Event())
        kernel.run()
        summary = link_load_summary(net.link_utilization())
        assert summary["max"] == pytest.approx(1000.0, rel=1e-3)
