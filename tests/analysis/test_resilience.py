"""Tests for failure-injection analysis."""

from __future__ import annotations

import pytest

from repro.analysis.resilience import (
    edge_failure_impact,
    switch_failure_impact,
)
from repro.core.construct import clique_host_switch_graph, random_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import h_aspl


class TestEdgeFailures:
    def test_graph_restored_after_trials(self, fig1_graph):
        before = fig1_graph.copy()
        edge_failure_impact(fig1_graph, trials=10, seed=0)
        assert fig1_graph == before

    def test_ring_never_disconnects_on_single_failure(self, fig1_graph):
        impact = edge_failure_impact(fig1_graph, trials=20, seed=1)
        assert impact.disconnected == 0
        assert impact.mean_h_aspl > impact.baseline_h_aspl
        assert impact.worst_h_aspl >= impact.mean_h_aspl
        assert impact.mean_degradation > 0

    def test_tree_always_disconnects(self):
        # Spanning-tree-only graph: every link is a bridge.
        g = random_host_switch_graph(10, 5, 8, seed=2, fill_edges=False)
        impact = edge_failure_impact(g, trials=10, seed=2)
        assert impact.disconnected == 10
        assert impact.disconnection_probability == 1.0

    def test_clique_degrades_gently(self):
        g = clique_host_switch_graph(20, 8)
        impact = edge_failure_impact(g, trials=15, seed=3)
        assert impact.disconnected == 0
        # A clique's single-edge failure adds at most one extra hop for
        # the affected switch pair.
        assert impact.worst_h_aspl <= impact.baseline_h_aspl + 1.0

    def test_validation(self, fig1_graph):
        with pytest.raises(ValueError, match="trials"):
            edge_failure_impact(fig1_graph, trials=0)
        lonely = HostSwitchGraph.from_edges(1, 4, [], [0, 0])
        with pytest.raises(ValueError, match="no switch-switch"):
            edge_failure_impact(lonely)


class TestSwitchFailures:
    def test_ring_survives_any_single_switch(self, fig1_graph):
        impact = switch_failure_impact(fig1_graph, trials=12, seed=4)
        # Losing one ring switch keeps the remaining three connected
        # (the other 12 hosts still talk), so no trial disconnects.
        assert impact.disconnected == 0
        assert impact.baseline_h_aspl == pytest.approx(h_aspl(fig1_graph))

    def test_star_hub_failure_detected(self):
        # Star of switches: hub in the middle; hub failure disconnects.
        g = HostSwitchGraph(4, 6)
        for leaf in (1, 2, 3):
            g.add_switch_edge(0, leaf)
        for leaf in (1, 2, 3):
            g.attach_host(leaf)
        impact = switch_failure_impact(g, trials=30, seed=5)
        assert impact.disconnected > 0

    def test_random_graph_mostly_survives(self):
        g = random_host_switch_graph(30, 10, 8, seed=6)
        impact = switch_failure_impact(g, trials=10, seed=6)
        assert impact.trials == 10
        assert 0 <= impact.disconnection_probability <= 1
