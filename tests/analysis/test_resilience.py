"""Tests for failure-injection analysis."""

from __future__ import annotations

import math

import pytest

from repro.analysis.resilience import (
    ResilienceSweepResult,
    edge_failure_impact,
    failure_sweep,
    switch_failure_impact,
)
from repro.core.construct import clique_host_switch_graph, random_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.core.metrics import h_aspl
from repro.obs import TelemetryRegistry


class TestEdgeFailures:
    def test_graph_restored_after_trials(self, fig1_graph):
        before = fig1_graph.copy()
        edge_failure_impact(fig1_graph, trials=10, seed=0)
        assert fig1_graph == before

    def test_ring_never_disconnects_on_single_failure(self, fig1_graph):
        impact = edge_failure_impact(fig1_graph, trials=20, seed=1)
        assert impact.disconnected == 0
        assert impact.mean_h_aspl > impact.baseline_h_aspl
        assert impact.worst_h_aspl >= impact.mean_h_aspl
        assert impact.mean_degradation > 0

    def test_tree_always_disconnects(self):
        # Spanning-tree-only graph: every link is a bridge.
        g = random_host_switch_graph(10, 5, 8, seed=2, fill_edges=False)
        impact = edge_failure_impact(g, trials=10, seed=2)
        assert impact.disconnected == 10
        assert impact.disconnection_probability == 1.0

    def test_clique_degrades_gently(self):
        g = clique_host_switch_graph(20, 8)
        impact = edge_failure_impact(g, trials=15, seed=3)
        assert impact.disconnected == 0
        # A clique's single-edge failure adds at most one extra hop for
        # the affected switch pair.
        assert impact.worst_h_aspl <= impact.baseline_h_aspl + 1.0

    def test_validation(self, fig1_graph):
        with pytest.raises(ValueError, match="trials"):
            edge_failure_impact(fig1_graph, trials=0)
        lonely = HostSwitchGraph.from_edges(1, 4, [], [0, 0])
        with pytest.raises(ValueError, match="no switch-switch"):
            edge_failure_impact(lonely)


class TestSwitchFailures:
    def test_ring_survives_any_single_switch(self, fig1_graph):
        impact = switch_failure_impact(fig1_graph, trials=12, seed=4)
        # Losing one ring switch keeps the remaining three connected
        # (the other 12 hosts still talk), so no trial disconnects.
        assert impact.disconnected == 0
        assert impact.baseline_h_aspl == pytest.approx(h_aspl(fig1_graph))

    def test_star_hub_failure_detected(self):
        # Star of switches: hub in the middle; hub failure disconnects.
        g = HostSwitchGraph(4, 6)
        for leaf in (1, 2, 3):
            g.add_switch_edge(0, leaf)
        for leaf in (1, 2, 3):
            g.attach_host(leaf)
        impact = switch_failure_impact(g, trials=30, seed=5)
        assert impact.disconnected > 0

    def test_random_graph_mostly_survives(self):
        g = random_host_switch_graph(30, 10, 8, seed=6)
        impact = switch_failure_impact(g, trials=10, seed=6)
        assert impact.trials == 10
        assert 0 <= impact.disconnection_probability <= 1


class TestFixedSemantics:
    """Regression tests for the two fixed FailureImpact behaviors."""

    def test_worst_is_inf_when_any_trial_disconnects(self):
        # Star of switches: some trials hit the hub (disconnect), others a
        # leaf (stay connected) — exactly the mixed case the old code
        # reported a misleading finite worst for.
        g = HostSwitchGraph(4, 6)
        for leaf in (1, 2, 3):
            g.add_switch_edge(0, leaf)
        for leaf in (1, 2, 3):
            g.attach_host(leaf)
        impact = switch_failure_impact(g, trials=30, seed=5)
        assert 0 < impact.disconnected < impact.trials
        assert math.isinf(impact.worst_h_aspl)
        # The separate finite field keeps the old meaning.
        assert math.isfinite(impact.worst_connected_h_aspl)
        assert math.isfinite(impact.mean_h_aspl)  # connected trials only

    def test_worst_finite_when_no_trial_disconnects(self, fig1_graph):
        impact = edge_failure_impact(fig1_graph, trials=20, seed=1)
        assert impact.disconnected == 0
        assert impact.worst_h_aspl == impact.worst_connected_h_aspl
        assert math.isfinite(impact.worst_h_aspl)

    def test_all_disconnected_everything_inf(self):
        g = random_host_switch_graph(10, 5, 8, seed=2, fill_edges=False)
        impact = edge_failure_impact(g, trials=10, seed=2)
        assert impact.disconnected == impact.trials
        assert math.isinf(impact.mean_h_aspl)
        assert math.isinf(impact.worst_h_aspl)
        assert math.isinf(impact.worst_connected_h_aspl)

    def test_seeded_runs_identical(self, fig1_graph):
        a = edge_failure_impact(fig1_graph, trials=15, seed=9)
        b = edge_failure_impact(fig1_graph, trials=15, seed=9)
        assert a == b  # frozen dataclass equality: bit-identical fields
        c = switch_failure_impact(fig1_graph, trials=15, seed=9)
        d = switch_failure_impact(fig1_graph, trials=15, seed=9)
        assert c == d


class TestExceptionSafety:
    def test_graph_intact_after_failing_metric(self, fig1_graph, monkeypatch):
        """A raising measurement must not corrupt the shared matrix."""
        import repro.analysis.resilience as resilience

        clean = edge_failure_impact(fig1_graph, trials=10, seed=3)
        calls = {"n": 0}
        real = resilience.h_aspl_from_distances

        def flaky(dist, k, n):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("injected metric failure")
            return real(dist, k, n)

        monkeypatch.setattr(resilience, "h_aspl_from_distances", flaky)
        before = fig1_graph.copy()
        with pytest.raises(RuntimeError, match="injected metric failure"):
            edge_failure_impact(fig1_graph, trials=10, seed=3)
        assert fig1_graph == before  # try/finally restored the edge
        monkeypatch.setattr(resilience, "h_aspl_from_distances", real)
        again = edge_failure_impact(fig1_graph, trials=10, seed=3)
        assert again == clean

    def test_switch_sweep_survives_failing_metric(self, fig1_graph, monkeypatch):
        import repro.analysis.resilience as resilience

        clean = switch_failure_impact(fig1_graph, trials=8, seed=4)

        def always_raise(dist, k, n):
            raise RuntimeError("boom")

        monkeypatch.setattr(resilience, "h_aspl_from_distances", always_raise)
        before = fig1_graph.copy()
        with pytest.raises(RuntimeError, match="boom"):
            switch_failure_impact(fig1_graph, trials=8, seed=4)
        assert fig1_graph == before
        monkeypatch.undo()
        assert switch_failure_impact(fig1_graph, trials=8, seed=4) == clean


class TestFailureSweep:
    def test_deterministic_and_round_trips(self, fig1_graph):
        a = failure_sweep(fig1_graph, mode="link", trials=12, seed=1)
        b = failure_sweep(fig1_graph, mode="link", trials=12, seed=1)
        assert a == b
        assert ResilienceSweepResult.from_dict(a.to_dict()) == a

    def test_single_link_on_ring_stays_connected(self, fig1_graph):
        sweep = failure_sweep(fig1_graph, mode="link", trials=10, seed=2)
        assert sweep.disconnected == 0
        assert sweep.min_reachable_fraction == 1.0
        assert all(c >= sweep.baseline_h_aspl for c in sweep.connected_h_aspl)

    def test_partitioning_sweep_has_finite_metrics(self):
        # Tree fabric: every trial partitions; metrics stay finite.
        g = random_host_switch_graph(10, 5, 8, seed=2, fill_edges=False)
        sweep = failure_sweep(g, mode="link", trials=25, seed=3)
        assert sweep.disconnected == 25
        assert sweep.disconnection_probability == 1.0
        assert sweep.mean_reachable_fraction < 1.0
        assert all(math.isfinite(f) for f in sweep.reachable_pair_fraction)
        assert all(c >= 1 for c in sweep.num_components)

    def test_k_simultaneous_failures(self, fig1_graph):
        # Two simultaneous ring-link failures always partition the 4-ring
        # unless the two cut edges are adjacent... on a 4-cycle any two
        # edge removals leave a path graph or two components; both are
        # handled without raising.
        sweep = failure_sweep(fig1_graph, mode="link", failures=2, trials=10, seed=4)
        assert sweep.failures == 2
        assert len(sweep.connected_h_aspl) == 10

    def test_switch_mode_removes_hosts(self, fig1_graph):
        sweep = failure_sweep(fig1_graph, mode="switch", trials=8, seed=5)
        assert sweep.mode == "switch"
        # Hosts go down with their switch: metrics cover the survivors,
        # which on a ring stay connected (reachable fraction 1 among the
        # 12 surviving hosts), with a finite degraded h-ASPL.
        assert sweep.disconnected == 0
        assert sweep.min_reachable_fraction == 1.0
        assert all(math.isfinite(c) for c in sweep.connected_h_aspl)
        assert all(c == 1 for c in sweep.num_components)

    def test_percentiles_and_summary(self, fig1_graph):
        sweep = failure_sweep(fig1_graph, mode="link", trials=10, seed=6)
        pct = sweep.percentiles()
        assert set(pct) == {"p50", "p90", "p99", "max"}
        assert pct["p50"] <= pct["p90"] <= pct["p99"] <= pct["max"]
        assert math.isfinite(sweep.h_aspl)

    def test_on_trial_called_in_order(self, fig1_graph):
        seen: list[int] = []
        failure_sweep(fig1_graph, trials=4, seed=7, on_trial=seen.append)
        assert seen == [0, 1, 2, 3]

    def test_telemetry_counts_injected_faults(self, fig1_graph):
        tel = TelemetryRegistry()
        failure_sweep(fig1_graph, mode="link", failures=2, trials=5, seed=8,
                      telemetry=tel)
        assert tel.counter("faults.injected").value == 10

    def test_graph_restored_after_sweep(self, fig1_graph):
        before = fig1_graph.copy()
        failure_sweep(fig1_graph, mode="switch", trials=6, seed=9)
        assert fig1_graph == before

    def test_validation(self, fig1_graph):
        with pytest.raises(ValueError, match="mode"):
            failure_sweep(fig1_graph, mode="node")
        with pytest.raises(ValueError, match="trials"):
            failure_sweep(fig1_graph, trials=0)
        with pytest.raises(ValueError, match="failures"):
            failure_sweep(fig1_graph, failures=0)
        with pytest.raises(ValueError, match="failures"):
            failure_sweep(fig1_graph, mode="switch", failures=99)
