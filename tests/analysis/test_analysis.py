"""Tests for host-distribution analysis and report rendering."""

from __future__ import annotations

import pytest

from repro.analysis import (
    format_series,
    format_table,
    host_distribution,
    host_distribution_summary,
    unused_switch_fraction,
)
from repro.core.hostswitch import HostSwitchGraph


@pytest.fixture
def skewed_graph() -> HostSwitchGraph:
    g = HostSwitchGraph.from_edges(
        4, 8, [(0, 1), (1, 2), (2, 3)], [0, 0, 0, 1, 1, 2]
    )
    return g


class TestDistributions:
    def test_histogram_includes_zero(self, skewed_graph):
        assert host_distribution(skewed_graph) == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_unused_fraction(self, skewed_graph):
        assert unused_switch_fraction(skewed_graph) == pytest.approx(0.25)

    def test_summary_fields(self, skewed_graph):
        s = host_distribution_summary(skewed_graph)
        assert s.min_hosts == 0
        assert s.max_hosts == 3
        assert s.mean_hosts == pytest.approx(1.5)
        assert s.distinct_values == 4
        assert not s.is_regular

    def test_regular_detection(self, clique4_graph):
        s = host_distribution_summary(clique4_graph)
        assert s.is_regular
        assert s.unused_fraction == 0.0


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bbbb", 22.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # all rows the same rendered width
        widths = {len(ln) for ln in lines[1:]}
        assert len(widths) == 1

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159265]])
        assert "3.142" in out

    def test_format_series(self):
        out = format_series("s", [1, 2], [10.0, 20.0], x_label="m", y_label="h-ASPL")
        assert "m" in out and "h-ASPL" in out
        assert out.splitlines()[0] == "s"
