"""REP013 fixture: f-string and unregistered instrument names."""


def record(tel, kind):
    tel.counter(f"sim.{kind}").inc()
    tel.gauge("sim.unregistered_name").set(1.0)
    tel.counter("sim.cycles").inc()
