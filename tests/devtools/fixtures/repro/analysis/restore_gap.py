"""REP012 seeded fixture that REP009 provably misses.

REP009 (the fast tier) only looks at mutate/measure/restore *loops*;
this straight-line probe mutates, calls out, and restores with no loop
at all, yet ``measure(graph)`` can raise and escape before
``add_edge`` runs — exactly the CFG-exact gap REP012 closes.
"""


def probe(graph, edge, measure):
    a, b = edge
    graph.remove_edge(a, b)
    score = measure(graph)
    graph.add_edge(a, b)
    return score


def probe_protected(graph, edge, measure):
    a, b = edge
    graph.remove_edge(a, b)
    try:
        return measure(graph)
    finally:
        graph.add_edge(a, b)
