"""REP004 fixture: equality comparison against float("inf").

Autofixed to ``math.isinf`` (plus the ``import math`` insertion).
"""


def is_unreachable(dist):
    return dist == float("inf")
