"""REP014 seeded fixture: a hand-rolled frontier BFS in repro.core.

Both probes advance a wavefront while filling a distance array by hand
— exactly the private BFS fork :mod:`repro.core.kernels` exists to
prevent.  The kernel layer's ``get_backend().bfs_distances`` is batched,
backend-pluggable, and bit-identical across backends; neither property
survives a local re-implementation.
"""

from collections import deque

import numpy as np


def level_bfs(adj, source, num):
    dist = np.full(num, np.inf)
    dist[source] = 0.0
    frontier = [source]
    depth = 0.0
    while frontier:
        depth += 1.0
        nxt = []
        for vertex in frontier:
            for neighbor in adj[vertex]:
                if np.isinf(dist[neighbor]):
                    dist[neighbor] = depth
                    nxt.append(neighbor)
        frontier = nxt
    return dist


def queue_bfs(adj, source, num):
    dist = np.full(num, np.inf)
    dist[source] = 0.0
    pending = deque([source])
    while pending:
        vertex = pending.popleft()
        for neighbor in adj[vertex]:
            if np.isinf(dist[neighbor]):
                dist[neighbor] = dist[vertex] + 1.0
                pending.append(neighbor)
    return dist
