"""REP010 fixture: None-defaulted seeds reaching ambient entropy.

Both defaults below are autofixable (None -> 0); after ``--fix`` the
module lints clean, which CI's idempotency self-check relies on.
"""

import numpy as np


def make_rng(seed=None):
    return np.random.default_rng(seed)


def solve(graph, seed=None):
    rng = make_rng(seed)
    return rng.random()
