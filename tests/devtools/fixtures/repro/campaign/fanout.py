"""REP011 fixture: unpicklable submission and completion-order folds."""

from concurrent.futures import ProcessPoolExecutor, as_completed


def gather(points):
    results = []
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda p: p * 2, p) for p in points]
        for future in as_completed(futures):
            results.append(future.result())
    return results
