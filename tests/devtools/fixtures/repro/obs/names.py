"""Closed instrument-name registry for the fixture tree (REP013)."""

INSTRUMENTS: frozenset[str] = frozenset(
    {
        "sim.cycles",
        "sim.packets",
    }
)
