"""Fixture tests for the flow-tier rules REP010-REP013.

Snippets are written into a ``repro/...`` shaped tmp tree so module
names resolve the way they do for the shipped package, then linted
through :func:`repro.devtools.flow.flow_lint` (whole-program, so
cross-module cases genuinely cross modules).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools.flow import FlowStats, flow_lint
from repro.devtools.lint import lint_paths, lint_source

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REGISTRY = frozenset({"sim.cycles", "sim.packets"})


def write_tree(tmp_path: Path, files: dict[str, str]) -> list[Path]:
    paths = []
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")
        paths.append(path)
    return paths


def flow_codes(
    tmp_path: Path, files: dict[str, str], **kwargs
) -> tuple[list[str], list, FlowStats]:
    diags, stats = flow_lint(write_tree(tmp_path, files), **kwargs)
    assert stats.converged, "dataflow must reach a fixed point on fixtures"
    return [d.code for d in diags], diags, stats


# --------------------------------------------------------------------- #
# REP010 — transitive ambient entropy
# --------------------------------------------------------------------- #


def test_rep010_none_default_reaching_default_rng(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/core/mod.py": """
                import numpy as np

                def make(seed=None):
                    return np.random.default_rng(seed)
                """
        },
    )
    assert codes == ["REP010"]
    assert diags[0].fix, "None default must carry the seed=0 autofix"


def test_rep010_cross_module_none_default(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/core/helpers.py": """
                import numpy as np

                def as_generator(seed=None):
                    return np.random.default_rng(seed)
                """,
            "repro/core/solver.py": """
                from repro.core.helpers import as_generator

                def solve(graph):
                    rng = as_generator()
                    return rng.random()
                """,
        },
    )
    # One finding at the carrier's own default, one at the no-arg caller
    # two modules away — the cross-module view REP001 cannot have.
    assert codes == ["REP010", "REP010"]
    caller = [d for d in diags if "solver" in d.path]
    assert caller and "defaults 'seed' to None" in caller[0].message


def test_rep010_ambient_always_callee(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/core/helpers.py": """
                import random

                def entropy_draw():
                    return random.random()
                """,
            "repro/core/solver.py": """
                from repro.core.helpers import entropy_draw

                def solve(graph):
                    return entropy_draw()
                """,
        },
    )
    # The random.* call site itself is REP001's; the *caller* a module
    # away is REP010's — it draws ambient entropy with no local tell.
    assert "REP010" in codes
    assert any("unconditionally" in d.message for d in diags)


def test_rep010_respects_is_not_none_guard(tmp_path):
    codes, _, _ = flow_codes(
        tmp_path,
        {
            "repro/core/mod.py": """
                import numpy as np

                def make(seed=None):
                    if seed is not None:
                        return np.random.default_rng(seed)
                    return np.random.default_rng(12345)
                """
        },
    )
    assert codes == []


def test_rep010_respects_or_zero_and_conditional(tmp_path):
    codes, _, _ = flow_codes(
        tmp_path,
        {
            "repro/core/mod.py": """
                import numpy as np

                def make(seed=None):
                    return np.random.default_rng(seed or 0)

                def make2(seed=None):
                    return np.random.default_rng(0 if seed is None else seed)
                """
        },
    )
    assert codes == []


def test_rep010_explicit_none_argument(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/core/helpers.py": """
                import numpy as np

                def as_generator(seed=0):
                    return np.random.default_rng(seed)
                """,
            "repro/core/solver.py": """
                from repro.core.helpers import as_generator

                def solve(graph):
                    return as_generator(None).random()
                """,
        },
    )
    assert "REP010" in codes
    assert any("explicit None" in d.message for d in diags)


def test_rep010_scoped_to_deterministic_packages(tmp_path):
    codes, _, _ = flow_codes(
        tmp_path,
        {
            "repro/devtools_extra/mod.py": """
                import numpy as np

                def make(seed=None):
                    return np.random.default_rng(seed)
                """
        },
    )
    assert codes == []


def test_rep010_bare_seedsequence_fires_bare_default_rng_does_not(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/core/mod.py": """
                import numpy as np

                def spawnable():
                    return np.random.SeedSequence()

                def rep001_territory():
                    return np.random.default_rng()
                """
        },
    )
    # Bare default_rng() stays the fast tier's call-site finding.
    assert codes == ["REP010"]
    assert "SeedSequence" in diags[0].message


# --------------------------------------------------------------------- #
# REP011 — cross-process fan-out hazards
# --------------------------------------------------------------------- #


def test_rep011_lambda_and_nested_def_submission(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/campaign/mod.py": """
                from concurrent.futures import ProcessPoolExecutor

                def fan_out(points):
                    def work(p):
                        return p * 2
                    with ProcessPoolExecutor() as pool:
                        a = pool.submit(lambda p: p, points[0])
                        b = pool.submit(work, points[1])
                    return a, b
                """
        },
    )
    assert codes == ["REP011", "REP011"]
    assert any("lambda" in d.message for d in diags)
    assert any("nested function 'work'" in d.message for d in diags)


def test_rep011_completion_order_folds(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/campaign/mod.py": """
                from concurrent.futures import ProcessPoolExecutor, wait, as_completed

                def gather(points, work):
                    results = []
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(work, p) for p in points]
                        for future in as_completed(futures):
                            results.append(future.result())
                        done, not_done = wait(futures)
                        for future in done:
                            results.extend(future.result())
                    return results
                """
        },
    )
    assert codes.count("REP011") == 2
    assert all("completion" in d.message for d in diags)


def test_rep011_quiet_on_dispatch_order_iteration(tmp_path):
    codes, _, _ = flow_codes(
        tmp_path,
        {
            "repro/campaign/mod.py": """
                from concurrent.futures import ProcessPoolExecutor, wait

                def gather(points, work):
                    results = []
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(work, p) for p in points]
                        wait(futures)
                        for future in futures:
                            results.append(future.result())
                    return results
                """
        },
    )
    assert codes == []


# --------------------------------------------------------------------- #
# REP012 — CFG-exact restore safety
# --------------------------------------------------------------------- #


def test_rep012_straight_line_escape(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/analysis/mod.py": """
                def probe(graph, a, b, measure):
                    graph.remove_edge(a, b)
                    score = measure(graph)
                    graph.add_edge(a, b)
                    return score
                """
        },
    )
    assert codes == ["REP012"]
    assert "add_edge" in diags[0].message


def test_rep012_quiet_with_try_finally(tmp_path):
    codes, _, _ = flow_codes(
        tmp_path,
        {
            "repro/analysis/mod.py": """
                def probe(graph, a, b, measure):
                    graph.remove_edge(a, b)
                    try:
                        return measure(graph)
                    finally:
                        graph.add_edge(a, b)
                """
        },
    )
    assert codes == []


def test_rep012_quiet_when_arguments_differ(tmp_path):
    codes, _, _ = flow_codes(
        tmp_path,
        {
            "repro/analysis/mod.py": """
                def rewire(graph, a, b, c, d, measure):
                    graph.remove_edge(a, b)
                    measure(graph)
                    graph.add_edge(c, d)
                """
        },
    )
    assert codes == []


def test_rep012_quiet_on_rebuild_without_restore_intent(tmp_path):
    # Two independent loops: the mutation's own paths never restore the
    # same edge they removed mid-measurement; that is reconstruction,
    # not a mutate/measure/restore protocol, and must stay quiet.
    codes, _, _ = flow_codes(
        tmp_path,
        {
            "repro/analysis/mod.py": """
                def rebuild(graph, removed, added):
                    for a, b in removed:
                        graph.remove_edge(a, b)
                    for a, b in added:
                        graph.add_edge(a, b)
                """
        },
    )
    assert codes == []


def test_rep012_catches_seeded_fixture_rep009_misses():
    fixture = FIXTURES / "repro" / "analysis" / "restore_gap.py"
    source = fixture.read_text(encoding="utf-8")
    # The fast tier (REP009's owner) sees nothing: no loop to pattern-match.
    fast = [d.code for d in lint_source(source, str(fixture))]
    assert "REP009" not in fast
    # The CFG-exact flow tier flags the unprotected probe but not the
    # try/finally-protected twin.
    diags, stats = flow_lint([fixture])
    assert stats.converged
    rep012 = [d for d in diags if d.code == "REP012"]
    assert len(rep012) == 1
    protected_line = source[: source.index("def probe_protected")].count("\n") + 1
    assert rep012[0].line < protected_line  # the unprotected probe, not its twin


# --------------------------------------------------------------------- #
# REP013 — instrument-name integrity
# --------------------------------------------------------------------- #


def test_rep013_literals_constants_and_fstrings(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/simulation/mod.py": """
                _CTR = "sim.cycles"
                _BAD = "sim.not_registered"

                def record(tel, kind, name):
                    tel.counter("sim.cycles").inc()      # registered literal
                    tel.counter(_CTR).inc()              # registered constant
                    tel.counter(_BAD).inc()              # unregistered constant
                    tel.counter(f"sim.{kind}").inc()     # open-ended f-string
                    tel.gauge("sim.rogue").set(1.0)      # unregistered literal
                    tel.timer(name)                      # local variable
                """
        },
        registry=REGISTRY,
    )
    assert codes == ["REP013"] * 4
    messages = "\n".join(d.message for d in diags)
    assert "sim.not_registered" in messages
    assert "f-string" in messages
    assert "sim.rogue" in messages
    assert "'name'" in messages


def test_rep013_literal_dict_dispatch(tmp_path):
    codes, diags, _ = flow_codes(
        tmp_path,
        {
            "repro/simulation/mod.py": """
                _OK = {"a": "sim.cycles", "b": "sim.packets"}
                _BAD = {"a": "sim.cycles", "b": "sim.rogue"}

                def record(tel, kind):
                    tel.counter(_OK[kind]).inc()
                    tel.counter(_BAD[kind]).inc()
                """
        },
        registry=REGISTRY,
    )
    assert codes == ["REP013"]
    assert "sim.rogue" in diags[0].message


def test_rep013_exempt_packages_and_missing_registry(tmp_path):
    files = {
        "repro/obs/sink.py": """
            def flush(tel):
                tel.counter("not.registered").inc()
            """
    }
    codes, _, _ = flow_codes(tmp_path, files, registry=REGISTRY)
    assert codes == []  # repro.obs is exempt
    codes, _, _ = flow_codes(
        tmp_path,
        {
            "repro/simulation/late.py": """
                def record(tel):
                    tel.counter("whatever").inc()
                """
        },
        registry=None,
    )
    assert codes == []  # no registry in the tree -> rule stands down


# --------------------------------------------------------------------- #
# Engine accounting / select plumbing
# --------------------------------------------------------------------- #


def test_flow_stats_accounting_over_fixture_tree():
    files = sorted(FIXTURES.rglob("*.py"))
    diags, stats = flow_lint(files)
    assert stats.converged
    assert stats.functions_analyzed >= 5
    assert stats.summary_rounds >= 1
    codes = {d.code for d in diags}
    assert {"REP010", "REP011", "REP012", "REP013"} <= codes


def test_flow_select_restricts_rules(tmp_path):
    files = sorted(FIXTURES.rglob("*.py"))
    diags, _ = flow_lint(files, select={"REP012"})
    assert {d.code for d in diags} == {"REP012"}


def test_lint_paths_merges_tiers_in_sorted_order(tmp_path):
    paths = write_tree(
        tmp_path,
        {
            "repro/core/zz_mod.py": """
                import random
                import numpy as np

                def make(seed=None):
                    random.random()
                    return np.random.default_rng(seed)
                """
        },
    )
    diags = lint_paths([str(p) for p in paths])
    codes = [d.code for d in diags]
    assert "REP001" in codes and "REP010" in codes  # both tiers ran
    assert [d.sort_key() for d in diags] == sorted(d.sort_key() for d in diags)
