"""Fixture-snippet tests for the ``repro-lint`` rules (REP001–REP014, fast tier).

Each rule gets at least one firing and one non-firing snippet; waivers and
the console entry point are exercised at the end.  Snippets are linted as
strings under fake ``src/repro/...`` paths so the package-sensitive rules
(REP005) see realistic module locations.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools.lint import lint_source, main

LIB_PATH = "src/repro/analysis/fake_module.py"
CORE_PATH = "src/repro/core/fake_module.py"


def codes(source: str, path: str = LIB_PATH) -> list[str]:
    return [d.code for d in lint_source(textwrap.dedent(source), path)]


# --------------------------------------------------------------------- #
# REP001 — unseeded randomness
# --------------------------------------------------------------------- #


def test_rep001_fires_on_global_random_module():
    src = """
        import random

        def pick(xs):
            return random.choice(xs)
        """
    assert "REP001" in codes(src)


def test_rep001_fires_on_numpy_global_random():
    src = """
        import numpy as np

        def noise(n):
            return np.random.rand(n)
        """
    assert "REP001" in codes(src)


def test_rep001_fires_on_zero_arg_default_rng():
    src = """
        import numpy as np

        def noise(n):
            rng = np.random.default_rng()
            return rng.random(n)
        """
    assert "REP001" in codes(src)


def test_rep001_fires_on_unseeded_stochastic_entry_point():
    src = """
        from repro.core.annealing import anneal

        def solve(g):
            return anneal(g)
        """
    assert "REP001" in codes(src)


def test_rep001_quiet_on_seeded_calls():
    src = """
        import numpy as np
        from repro.core.annealing import anneal

        def solve(g, seed):
            rng = np.random.default_rng(seed)
            return anneal(g, seed=rng)
        """
    assert codes(src) == []


# --------------------------------------------------------------------- #
# REP002 — mutated graph returned without validate()
# --------------------------------------------------------------------- #


def test_rep002_fires_on_unvalidated_construction():
    src = """
        from repro.core.hostswitch import HostSwitchGraph

        def build():
            g = HostSwitchGraph(num_switches=2, radix=4)
            g.add_switch_edge(0, 1)
            g.attach_host(0)
            return g
        """
    assert "REP002" in codes(src)


def test_rep002_quiet_when_validated():
    src = """
        from repro.core.hostswitch import HostSwitchGraph

        def build():
            g = HostSwitchGraph(num_switches=2, radix=4)
            g.add_switch_edge(0, 1)
            g.attach_host(0)
            g.validate()
            return g
        """
    assert codes(src) == []


def test_rep002_quiet_when_not_returned():
    # Mutating in place on behalf of the caller is the helper contract
    # (spread_hosts_evenly-style); only *returning* unvalidated fires.
    src = """
        from repro.core.hostswitch import HostSwitchGraph

        def fill(g: HostSwitchGraph) -> None:
            g.attach_host(0)
        """
    assert codes(src) == []


# --------------------------------------------------------------------- #
# REP003 — shortest-path calls in Python loops / duplicated APSP
# --------------------------------------------------------------------- #


def test_rep003_fires_on_dist_call_in_loop():
    src = """
        from repro.core.metrics import h_aspl

        def sweep(graphs):
            return [h_aspl(g) for g in graphs[:0]] or [h_aspl(g) for g in graphs]
        """
    # comprehension counts as a loop
    assert "REP003" in codes(src)


def test_rep003_fires_on_for_loop():
    src = """
        from repro.core.metrics import single_source_host_distances

        def all_rows(g, hosts):
            rows = []
            for h in hosts:
                rows.append(single_source_host_distances(g, h))
            return rows
        """
    assert "REP003" in codes(src)


def test_rep003_fires_on_duplicate_apsp_same_block():
    src = """
        from repro.core.metrics import diameter, h_aspl

        def report(g):
            a = h_aspl(g)
            d = diameter(g)
            return a, d
        """
    assert "REP003" in codes(src)


def test_rep003_quiet_on_single_batched_call():
    src = """
        from repro.core.metrics import h_aspl_and_diameter

        def report(g):
            return h_aspl_and_diameter(g)
        """
    assert codes(src) == []


# --------------------------------------------------------------------- #
# REP004 — float equality on metric values
# --------------------------------------------------------------------- #


def test_rep004_fires_on_metric_equality():
    src = """
        def is_clique_like(aspl):
            return aspl == 2.0
        """
    assert "REP004" in codes(src)


def test_rep004_fires_on_inf_equality():
    src = """
        def disconnected(value):
            return value == float("inf")
        """
    assert "REP004" in codes(src)


def test_rep004_quiet_on_ordering_and_string_compare():
    src = """
        def good(aspl, model):
            return aspl < 2.5 and model == "latency"
        """
    assert codes(src) == []


# --------------------------------------------------------------------- #
# REP005 — private internals crossing package boundaries
# --------------------------------------------------------------------- #


def test_rep005_fires_on_private_import_outside_core():
    src = """
        from repro.core.hostswitch import _private_helper
        """
    assert "REP005" in codes(src)


def test_rep005_fires_on_slot_access_outside_core():
    src = """
        from repro.core.hostswitch import HostSwitchGraph

        def degree(g: HostSwitchGraph, s: int) -> int:
            return len(g._adj[s])
        """
    assert "REP005" in codes(src)


def test_rep005_quiet_inside_core_package():
    src = """
        from repro.core.hostswitch import HostSwitchGraph

        def degree(g: HostSwitchGraph, s: int) -> int:
            return len(g._adj[s])
        """
    assert codes(src, path=CORE_PATH) == []


# --------------------------------------------------------------------- #
# REP006 — exact h-ASPL in repro.core loops (IncrementalEvaluator applies)
# --------------------------------------------------------------------- #


def test_rep006_fires_instead_of_rep003_in_core():
    src = """
        from repro.core.metrics import h_aspl

        def search(g, moves):
            values = []
            for move in moves:
                values.append(h_aspl(g))
            return values
        """
    found = codes(src, path=CORE_PATH)
    assert "REP006" in found
    assert "REP003" not in found


def test_rep006_covers_h_aspl_and_diameter():
    src = """
        from repro.core.metrics import h_aspl_and_diameter

        def sweep(graphs):
            return [h_aspl_and_diameter(g) for g in graphs]
        """
    assert "REP006" in codes(src, path=CORE_PATH)


def test_rep006_stays_rep003_outside_core():
    src = """
        from repro.core.metrics import h_aspl

        def sweep(graphs):
            return [h_aspl(g) for g in graphs]
        """
    found = codes(src, path=LIB_PATH)
    assert "REP003" in found
    assert "REP006" not in found


def test_rep006_quiet_on_other_dist_funcs_in_core():
    # switch_distance_matrix has no incremental alternative: still REP003.
    src = """
        from repro.core.metrics import switch_distance_matrix

        def rows(g, sources):
            return [switch_distance_matrix(g, s) for s in sources]
        """
    found = codes(src, path=CORE_PATH)
    assert "REP003" in found
    assert "REP006" not in found


def test_rep006_waivable():
    src = """
        from repro.core.metrics import h_aspl

        def search(g, moves):
            values = []
            for move in moves:
                values.append(h_aspl(g))  # repro-lint: disable=REP006 -- oracle check
            return values
        """
    assert codes(src, path=CORE_PATH) == []


# --------------------------------------------------------------------- #
# REP007 — print()/time.*() bypassing repro.obs in instrumented packages
# --------------------------------------------------------------------- #


def test_rep007_fires_on_print_in_core():
    src = """
        def report(value):
            print(f"h-ASPL is {value}")
        """
    assert "REP007" in codes(src, path=CORE_PATH)


def test_rep007_fires_on_time_time_in_simulation():
    src = """
        import time

        def measure():
            t0 = time.time()
            return time.time() - t0
        """
    found = codes(src, path="src/repro/simulation/fake_module.py")
    assert found.count("REP007") == 2


def test_rep007_fires_on_perf_counter_from_import_alias():
    src = """
        from time import perf_counter as pc

        def measure():
            return pc()
        """
    assert "REP007" in codes(src, path="src/repro/partition/fake_module.py")


def test_rep007_fires_on_aliased_time_module():
    src = """
        import time as t

        def measure():
            return t.perf_counter()
        """
    assert "REP007" in codes(src, path=CORE_PATH)


def test_rep007_silent_outside_instrumented_packages():
    src = """
        import time

        def measure():
            print("timing...")
            return time.perf_counter()
        """
    assert codes(src, path=LIB_PATH) == []
    assert codes(src, path="src/repro/devtools/fake_module.py") == []


def test_rep007_allows_obs_clock_and_other_time_functions():
    src = """
        import time
        from repro.obs import clock

        def measure():
            time.sleep(0.1)
            return clock()
        """
    assert codes(src, path=CORE_PATH) == []


def test_rep007_waivable():
    src = """
        def debug_dump(rows):
            for row in rows:
                print(row)  # repro-lint: disable=REP007 -- debugging helper
        """
    assert codes(src, path=CORE_PATH) == []


# --------------------------------------------------------------------- #
# REP008 — artifact writes in repro.campaign outside the store
# --------------------------------------------------------------------- #

CAMPAIGN_PATH = "src/repro/campaign/executor.py"
CAMPAIGN_STORE_PATH = "src/repro/campaign/store.py"


def test_rep008_fires_on_open_in_campaign_module():
    src = """
        def dump(path, rows):
            with open(path, "w") as fh:
                fh.write(str(rows))
        """
    assert "REP008" in codes(src, path=CAMPAIGN_PATH)


def test_rep008_fires_on_path_write_text():
    src = """
        from pathlib import Path

        def dump(path, text):
            Path(path).write_text(text)
        """
    assert "REP008" in codes(src, path=CAMPAIGN_PATH)


def test_rep008_fires_on_write_bytes():
    src = """
        def dump(path, blob):
            path.write_bytes(blob)
        """
    assert "REP008" in codes(src, path=CAMPAIGN_PATH)


def test_rep008_fires_on_json_dump():
    src = """
        import json

        def dump(fh, record):
            json.dump(record, fh)
        """
    assert "REP008" in codes(src, path=CAMPAIGN_PATH)


def test_rep008_silent_in_the_store_module():
    src = """
        import json

        def persist(path, record):
            with open(path, "w") as fh:
                json.dump(record, fh)
            path.write_text("done")
        """
    assert codes(src, path=CAMPAIGN_STORE_PATH) == []


def test_rep008_silent_outside_repro_campaign():
    src = """
        def dump(path, text):
            with open(path, "w") as fh:
                fh.write(text)
        """
    assert codes(src, path=LIB_PATH) == []
    assert codes(src, path=CORE_PATH) == []


def test_rep008_allows_reads_and_json_dumps():
    src = """
        import json

        def load(path):
            text = path.read_text()
            return json.loads(text), json.dumps({"ok": True})
        """
    assert codes(src, path=CAMPAIGN_PATH) == []


def test_rep008_waivable():
    src = """
        def dump(path, text):
            path.write_text(text)  # repro-lint: disable=REP008 -- scratch file
        """
    assert codes(src, path=CAMPAIGN_PATH) == []

# --------------------------------------------------------------------- #
# Waivers
# --------------------------------------------------------------------- #


def test_same_line_waiver_suppresses():
    src = """
        import random

        def pick(xs):
            return random.choice(xs)  # repro-lint: disable=REP001 -- demo only
        """
    assert codes(src) == []


def test_line_above_waiver_suppresses():
    src = """
        import random

        def pick(xs):
            # repro-lint: disable=REP001 -- demo only
            return random.choice(xs)
        """
    assert codes(src) == []


def test_file_waiver_suppresses_everywhere():
    src = """
        # repro-lint: disable-file=REP001
        import random

        def pick(xs):
            return random.choice(xs)

        def roll():
            return random.random()
        """
    assert codes(src) == []


def test_waiver_is_rule_specific():
    src = """
        import random

        def pick(aspl, xs):
            x = random.choice(xs)  # repro-lint: disable=REP004 -- wrong rule
            return x
        """
    assert "REP001" in codes(src)


def test_syntax_error_reports_rep000():
    assert codes("def broken(:\n") == ["REP000"]


# --------------------------------------------------------------------- #
# Console entry point
# --------------------------------------------------------------------- #


def test_main_exit_codes_and_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n\ndef f():\n    return random.random()\n")
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x + 1\n")

    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out
    assert f"{dirty}:4:" in out  # path:line prefix

    assert main([str(clean)]) == 0


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
        "REP008", "REP009", "REP014",
    ):
        assert code in out


def test_main_select_filters_rules(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n\ndef f():\n    return random.random()\n")
    assert main(["--select", "REP004", str(dirty)]) == 0
    assert main(["--select", "REP001", str(dirty)]) == 1


def test_shipped_tree_is_clean():
    # The acceptance bar: the repository's own src tree lints clean.
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    assert main([str(src)]) == 0


# --------------------------------------------------------------------- #
# REP009 — mutate-measure-restore loops without try/finally
# --------------------------------------------------------------------- #


def test_rep009_fires_on_unprotected_restore():
    src = """
        def sweep(graph, edges, measure):
            out = []
            for a, b in edges:
                graph.remove_switch_edge(a, b)
                out.append(measure(graph))
                graph.add_switch_edge(a, b)
            return out
    """
    assert "REP009" in codes(src)


def test_rep009_fires_on_ddm_style_loop():
    src = """
        def sweep(ddm, edges, measure):
            out = []
            for a, b in edges:
                ddm.remove_edge(a, b)
                out.append(measure(ddm.dist))
                ddm.add_edge(a, b)
            return out
    """
    assert "REP009" in codes(src)


def test_rep009_clean_with_finally_restore():
    src = """
        def sweep(graph, edges, measure):
            out = []
            for a, b in edges:
                graph.remove_switch_edge(a, b)
                try:
                    out.append(measure(graph))
                finally:
                    graph.add_switch_edge(a, b)
            return out
    """
    assert "REP009" not in codes(src)


def test_rep009_clean_for_construction_only_loop():
    # Loops that only add (or only remove) edges are building/tearing down
    # a graph, not doing a mutate-measure-restore cycle.
    src = """
        def build(graph, edges):
            for a, b in edges:
                graph.add_switch_edge(a, b)
    """
    assert "REP009" not in codes(src)
    src = """
        def teardown(graph, edges):
            for a, b in edges:
                graph.remove_switch_edge(a, b)
    """
    assert "REP009" not in codes(src)


def test_rep009_only_applies_to_analysis_modules():
    src = """
        def sweep(graph, edges, measure):
            for a, b in edges:
                graph.remove_switch_edge(a, b)
                measure(graph)
                graph.add_switch_edge(a, b)
    """
    assert "REP009" not in codes(src, path=CORE_PATH)
    assert "REP009" not in codes(src, path="src/repro/simulation/fake.py")


def test_rep009_fires_on_routing_fault_api():
    src = """
        def sweep(tables, events, measure):
            for event in events:
                tables.fail_link(0, 1)
                measure(tables)
                tables.repair_link(0, 1)
    """
    assert "REP009" in codes(src)


def test_rep009_waiver():
    src = """
        def sweep(graph, edges, measure):
            for a, b in edges:
                graph.remove_switch_edge(a, b)  # repro-lint: disable=REP009 -- measure cannot raise
                measure(graph)
                graph.add_switch_edge(a, b)
    """
    assert "REP009" not in codes(src)


# --------------------------------------------------------------------- #
# Waiver extents on multi-line statements
# --------------------------------------------------------------------- #


def test_waiver_on_last_line_of_multiline_statement():
    # The finding anchors at the statement's first line, but the waiver
    # sits on its *last* line; statement extents must bridge the gap.
    src = """
        import random

        def pick(xs):
            return random.choice(
                xs,
            )  # repro-lint: disable=REP001 -- demo only
        """
    assert codes(src) == []


def test_waiver_above_multiline_statement():
    src = """
        import random

        def pick(xs):
            # repro-lint: disable=REP001 -- demo only
            return random.choice(
                xs,
            )
        """
    assert codes(src) == []


def test_waiver_inside_multiline_statement_does_not_leak_past_it():
    # A waiver on the statement's last line doubles as a line-above
    # waiver only for the *immediately* following line; with any gap it
    # must not suppress later statements.
    src = """
        import random

        def pick(xs):
            a = random.choice(
                xs,
            )  # repro-lint: disable=REP001 -- only this call

            b = random.choice(xs)
            return a, b
        """
    assert codes(src) == ["REP001"]


# --------------------------------------------------------------------- #
# Global diagnostic ordering (regression)
# --------------------------------------------------------------------- #


def test_diagnostics_sorted_by_path_line_code(tmp_path):
    from repro.devtools.lint import lint_paths

    # Three dirty files named to defeat any directory-order luck, each
    # with findings from both tiers at assorted lines.
    for name in ("zz.py", "aa.py", "mm.py"):
        (tmp_path / name).write_text(
            "import random\n\n"
            "def f():\n"
            "    return random.random()\n\n"
            "def g(x):\n"
            "    return x == float('inf')\n"
        )
    diags = lint_paths([str(tmp_path)])
    keys = [d.sort_key() for d in diags]
    assert keys == sorted(keys)
    assert [d.path for d in diags] == sorted(
        [d.path for d in diags]
    ), "files must be ordered by path regardless of discovery order"


# --------------------------------------------------------------------- #
# Formats, baseline, and both CLI spellings
# --------------------------------------------------------------------- #


def _dirty_file(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n\ndef f():\n    return random.random()\n")
    return dirty


def test_main_json_format(tmp_path, capsys):
    import json

    dirty = _dirty_file(tmp_path)
    assert main(["--format", "json", str(dirty)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["violations"] == 1
    assert payload["diagnostics"][0]["code"] == "REP001"


def test_main_sarif_format_to_file(tmp_path, capsys):
    import json

    dirty = _dirty_file(tmp_path)
    out = tmp_path / "report.sarif"
    assert main(["--format", "sarif", "--output", str(out), str(dirty)]) == 1
    sarif = json.loads(out.read_text())
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["results"][0]["ruleId"] == "REP001"
    assert capsys.readouterr().out == ""  # report went to the file


def test_main_baseline_workflow(tmp_path, capsys):
    dirty = _dirty_file(tmp_path)
    baseline = tmp_path / "baseline.json"
    # Record the current findings, then the same tree gates clean.
    assert main(["--baseline", str(baseline), "--write-baseline", str(dirty)]) == 0
    capsys.readouterr()
    assert main(["--baseline", str(baseline), str(dirty)]) == 0
    assert "suppressed by baseline" in capsys.readouterr().out
    # A new finding in the same file still fails the gate.
    dirty.write_text(dirty.read_text() + "\ndef g():\n    return random.random()\n")
    assert main(["--baseline", str(baseline), str(dirty)]) == 1


def test_main_flag_validation(tmp_path, capsys):
    dirty = _dirty_file(tmp_path)
    assert main(["--no-flow", "--flow-only", str(dirty)]) == 2
    assert main(["--write-baseline", str(dirty)]) == 2
    assert main(["--select", "REP999", str(dirty)]) == 2
    capsys.readouterr()


def test_main_fix_reports_zero_on_clean_tree(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x + 1\n")
    assert main(["--fix", str(clean)]) == 0
    assert "applied 0 fix(es)" in capsys.readouterr().out


def test_repro_lint_subcommand_matches_console_script(tmp_path, capsys):
    from repro.cli import main as repro_main

    dirty = _dirty_file(tmp_path)
    # `repro lint ...` and the `repro-lint` console script are the same
    # driver: identical exit codes and identical output.
    assert repro_main(["lint", str(dirty)]) == 1
    via_subcommand = capsys.readouterr().out
    assert main([str(dirty)]) == 1
    assert capsys.readouterr().out == via_subcommand
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x + 1\n")
    assert repro_main(["lint", str(clean)]) == 0


# --------------------------------------------------------------------- #
# REP014 — hand-rolled frontier BFS outside repro.core.kernels
# --------------------------------------------------------------------- #

KERNELS_PATH = "src/repro/core/kernels/fake_backend.py"
FAULTS_PATH = "src/repro/faults/fake_module.py"

FRONTIER_BFS = """
    import numpy as np

    def bfs(adj, source, num):
        dist = np.full(num, np.inf)
        dist[source] = 0.0
        frontier = [source]
        depth = 0.0
        while frontier:
            depth += 1.0
            nxt = []
            for vertex in frontier:
                for neighbor in adj[vertex]:
                    if np.isinf(dist[neighbor]):
                        dist[neighbor] = depth
                        nxt.append(neighbor)
            frontier = nxt
        return dist
"""

POPLEFT_BFS = """
    from collections import deque
    import numpy as np

    def bfs(adj, source, num):
        dist = np.full(num, np.inf)
        dist[source] = 0.0
        pending = deque([source])
        while pending:
            vertex = pending.popleft()
            for neighbor in adj[vertex]:
                if np.isinf(dist[neighbor]):
                    dist[neighbor] = dist[vertex] + 1.0
                    pending.append(neighbor)
        return dist
"""


def test_rep014_fires_on_frontier_loop_in_core():
    assert "REP014" in codes(FRONTIER_BFS, path=CORE_PATH)


def test_rep014_fires_on_popleft_queue_bfs():
    assert "REP014" in codes(POPLEFT_BFS, path=CORE_PATH)


def test_rep014_fires_once_per_bfs_despite_nested_loops():
    diags = codes(FRONTIER_BFS, path=CORE_PATH)
    assert diags.count("REP014") == 1


def test_rep014_covers_analysis_and_faults_packages():
    assert "REP014" in codes(FRONTIER_BFS, path=LIB_PATH)
    assert "REP014" in codes(POPLEFT_BFS, path=FAULTS_PATH)


def test_rep014_exempts_the_kernel_package_itself():
    assert "REP014" not in codes(FRONTIER_BFS, path=KERNELS_PATH)


def test_rep014_quiet_outside_kernel_client_packages():
    assert "REP014" not in codes(FRONTIER_BFS, path="src/repro/simulation/fake.py")


def test_rep014_quiet_on_frontier_without_distances():
    # A wavefront that only collects reachability (no distance array) is
    # not the kernel hot path — e.g. connectivity checks.
    src = """
        def reachable(adj, source):
            seen = {source}
            frontier = [source]
            while frontier:
                nxt = []
                for vertex in frontier:
                    for neighbor in adj[vertex]:
                        if neighbor not in seen:
                            seen.add(neighbor)
                            nxt.append(neighbor)
                frontier = nxt
            return seen
    """
    assert "REP014" not in codes(src, path=CORE_PATH)


def test_rep014_quiet_on_distance_store_without_wavefront():
    src = """
        def fill(dist, rows, block):
            for i, row in enumerate(rows):
                dist[row] = block[i]
    """
    assert "REP014" not in codes(src, path=CORE_PATH)


def test_rep014_waiver():
    src = """
        import numpy as np

        def bfs(adj, source, num):
            dist = np.full(num, np.inf)
            frontier = [source]
            while frontier:  # repro-lint: disable=REP014 -- pedagogical reference
                nxt = []
                for vertex in frontier:
                    for neighbor in adj[vertex]:
                        if np.isinf(dist[neighbor]):
                            dist[neighbor] = dist[vertex] + 1.0
                            nxt.append(neighbor)
                frontier = nxt
            return dist
    """
    assert "REP014" not in codes(src, path=CORE_PATH)
