"""Golden-structure tests for the intra-function CFG builder.

The golden tests pin down the routing decisions that the flow rules
lean on: ``try/finally`` interception of ``return``/``break``/
``continue``, with-block unwinding into enclosing handlers, and loop
back edges.  The property test then sweeps every function in the
shipped ``src`` tree and asserts the builder's structural invariants
hold on real code, not just fixtures.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.devtools.flow import build_cfg
from repro.devtools.flow.cfg import BACK, CFG, EXC


def cfg_of(src: str) -> tuple[CFG, ast.FunctionDef]:
    tree = ast.parse(textwrap.dedent(src))
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    return build_cfg(fn), fn


def node_of(cfg: CFG, anchor: ast.AST) -> int:
    for node in cfg.nodes.values():
        if node.stmt is anchor:
            return node.idx
    owners = cfg.owner_map()
    assert id(anchor) in owners, f"no CFG node owns {ast.dump(anchor)[:60]}"
    return owners[id(anchor)]


def reaches(cfg: CFG, start: int, target: int, *, banned: int | None = None) -> bool:
    """True when ``target`` is reachable from ``start`` without passing
    through ``banned`` (edges out of ``banned`` are not followed)."""
    seen = set()
    stack = [start]
    while stack:
        idx = stack.pop()
        if idx == target:
            return True
        if idx in seen or idx == banned:
            continue
        seen.add(idx)
        stack.extend(edge.dst for edge in cfg.succs.get(idx, []))
    return False


# --------------------------------------------------------------------- #
# Golden: try/finally interception
# --------------------------------------------------------------------- #


def test_return_is_routed_through_finally():
    cfg, fn = cfg_of(
        """
        def f(res):
            try:
                return res.compute()
            finally:
                res.close()
        """
    )
    try_stmt = fn.body[0]
    assert isinstance(try_stmt, ast.Try)
    ret = node_of(cfg, try_stmt.body[0])
    close = node_of(cfg, try_stmt.finalbody[0])
    assert reaches(cfg, ret, cfg.exit)
    # The function cannot exit off the return without executing close().
    assert not reaches(cfg, ret, cfg.exit, banned=close)


def test_break_and_continue_routed_through_finally():
    cfg, fn = cfg_of(
        """
        def g(items, log):
            total = 0
            for item in items:
                try:
                    if item < 0:
                        break
                    if item == 0:
                        continue
                    total = total + item
                finally:
                    log.flush()
            return total
        """
    )
    for_stmt = fn.body[1]
    assert isinstance(for_stmt, ast.For)
    try_stmt = for_stmt.body[0]
    assert isinstance(try_stmt, ast.Try)
    brk = node_of(cfg, try_stmt.body[0].body[0])  # break
    cont = node_of(cfg, try_stmt.body[1].body[0])  # continue
    flush = node_of(cfg, try_stmt.finalbody[0])
    head = node_of(cfg, for_stmt.iter)
    ret = node_of(cfg, fn.body[2])
    # break leaves the loop only through the finally block ...
    assert reaches(cfg, brk, ret)
    assert not reaches(cfg, brk, ret, banned=flush)
    # ... and continue returns to the loop head only through it too.
    assert not reaches(cfg, cont, head, banned=flush)


def test_exception_in_try_reaches_finally_not_exit_directly():
    cfg, fn = cfg_of(
        """
        def k(lock, work, log):
            try:
                with lock:
                    work()
            finally:
                log.flush()
        """
    )
    try_stmt = fn.body[0]
    with_stmt = try_stmt.body[0]
    body_call = node_of(cfg, with_stmt.body[0])
    flush = node_of(cfg, try_stmt.finalbody[0])
    exc_targets = {
        edge.dst for edge in cfg.succs[body_call] if edge.kind == EXC
    }
    assert exc_targets, "a call inside with must have an exceptional edge"
    # Unwinding lands in the finally block, never straight at exit.
    assert exc_targets == {flush}


def test_with_body_unwinds_to_exit_when_unprotected():
    cfg, fn = cfg_of(
        """
        def h(lock, work):
            with lock:
                work()
            return 1
        """
    )
    with_stmt = fn.body[0]
    body_call = node_of(cfg, with_stmt.body[0])
    kinds = {(e.kind, e.dst) for e in cfg.succs[body_call]}
    assert (EXC, cfg.exit) in kinds
    ret = node_of(cfg, fn.body[1])
    assert reaches(cfg, body_call, ret)


def test_while_true_break_and_back_edge():
    cfg, fn = cfg_of(
        """
        def loop(step):
            while True:
                if step():
                    break
        """
    )
    assert cfg.exit in cfg.reachable_from(cfg.entry)
    back = [e for edges in cfg.succs.values() for e in edges if e.kind == BACK]
    assert back, "loop must contribute a back edge"
    # The acyclic view (skipping back edges) still reaches exit.
    assert cfg.exit in cfg.reachable_from(
        cfg.entry, skip_kinds=frozenset({BACK})
    )


def test_except_handler_catches_and_falls_through():
    cfg, fn = cfg_of(
        """
        def e(work):
            try:
                work()
            except ValueError:
                return -1
            return 0
        """
    )
    try_stmt = fn.body[0]
    call = node_of(cfg, try_stmt.body[0])
    handler_ret = node_of(cfg, try_stmt.handlers[0].body[0])
    tail_ret = node_of(cfg, fn.body[1])
    assert reaches(cfg, call, handler_ret)
    assert reaches(cfg, call, tail_ret)
    # A non-catch-all handler keeps an unwinding path out of the function.
    assert any(
        e.kind == EXC and e.dst == cfg.exit for e in cfg.succs.get(call, [])
    ) or reaches(cfg, call, cfg.exit, banned=tail_ret)


# --------------------------------------------------------------------- #
# Property: structural invariants over the whole shipped tree
# --------------------------------------------------------------------- #


def _assert_invariants(cfg: CFG) -> None:
    reachable = cfg.reachable_from(cfg.entry)
    assert reachable == set(cfg.nodes), (
        f"{cfg.name}: unreachable nodes {set(cfg.nodes) - reachable}"
    )
    assert cfg.entry in cfg.nodes and cfg.exit in cfg.nodes
    for src_idx, edges in cfg.succs.items():
        for edge in edges:
            assert edge.src == src_idx
            assert edge.dst in cfg.nodes
            assert edge in cfg.preds[edge.dst]
    for dst_idx, edges in cfg.preds.items():
        for edge in edges:
            assert edge.dst == dst_idx
            assert edge in cfg.succs[edge.src]


def test_every_node_reachable_over_src_corpus():
    src_root = Path(__file__).resolve().parents[2] / "src" / "repro"
    functions = 0
    for path in sorted(src_root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _assert_invariants(build_cfg(node))
                functions += 1
    assert functions > 300, "corpus should cover the whole shipped tree"


def test_every_node_reachable_over_fixture_corpus():
    fixtures = Path(__file__).resolve().parent / "fixtures"
    for path in sorted(fixtures.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _assert_invariants(build_cfg(node))
