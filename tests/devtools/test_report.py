"""Tests for the renderers (text / json / sarif) and the lint baseline."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint import Diagnostic
from repro.devtools.report import (
    apply_baseline,
    baseline_counts,
    load_baseline,
    render,
    render_json,
    render_sarif,
    render_text,
    write_baseline,
)

D1 = Diagnostic("src/repro/a.py", 3, 0, "REP001", "unseeded randomness")
D2 = Diagnostic("src/repro/a.py", 9, 4, "REP010", "ambient entropy")
D3 = Diagnostic("src/repro/b.py", 1, 0, "REP001", "unseeded randomness")


# --------------------------------------------------------------------- #
# Renderers
# --------------------------------------------------------------------- #


def test_render_text_summary_and_suppression_note():
    out = render_text([D1, D2], suppressed=3)
    assert "src/repro/a.py:3:0: REP001" in out
    assert "2 violation(s) in 1 file(s)" in out
    assert "3 finding(s) suppressed by baseline" in out
    assert render_text([]) == ""


def test_render_json_structure():
    payload = json.loads(render_json([D1, D3], suppressed=1))
    assert payload["summary"] == {"violations": 2, "files": 2, "suppressed": 1}
    first = payload["diagnostics"][0]
    assert first == {
        "path": "src/repro/a.py",
        "line": 3,
        "col": 0,
        "code": "REP001",
        "message": "unseeded randomness",
        "fixable": False,
    }


def test_render_sarif_schema_shape():
    sarif = json.loads(render_sarif([D1, D2, D3]))
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert [r["id"] for r in driver["rules"]] == ["REP001", "REP010"]
    assert len(run["results"]) == 3
    result = run["results"][0]
    assert result["ruleId"] == "REP001"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 3, "startColumn": 1}  # col is 1-based


def test_render_dispatch_and_unknown_format():
    assert render([D1], "text") == render_text([D1])
    assert render([D1], "json") == render_json([D1])
    assert render([D1], "sarif") == render_sarif([D1])
    with pytest.raises(ValueError):
        render([D1], "xml")


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #


def test_baseline_counts_key_by_path_and_code():
    counts = baseline_counts([D1, D2, D3, D1])
    assert counts == {
        "src/repro/a.py::REP001": 2,
        "src/repro/a.py::REP010": 1,
        "src/repro/b.py::REP001": 1,
    }


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [D1, D2])
    data = json.loads(path.read_text())
    assert data["version"] == 1
    assert load_baseline(path) == {
        "src/repro/a.py::REP001": 1,
        "src/repro/a.py::REP010": 1,
    }


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_apply_baseline_suppresses_only_recorded_counts():
    baseline = {"src/repro/a.py::REP001": 1}
    kept, suppressed = apply_baseline([D1, D2, D3], baseline)
    assert suppressed == 1
    # The baselined (path, rule) pair is consumed once; a *new* REP001 in
    # another file and the REP010 finding still fail the build.
    assert [d.path for d in kept] == ["src/repro/a.py", "src/repro/b.py"]
    assert [d.code for d in kept] == ["REP010", "REP001"]


def test_apply_baseline_is_line_drift_tolerant():
    moved = Diagnostic("src/repro/a.py", 777, 0, "REP001", "same rule, new line")
    kept, suppressed = apply_baseline([moved], {"src/repro/a.py::REP001": 1})
    assert suppressed == 1 and kept == []


def test_committed_baseline_matches_shipped_tree():
    # The repository ships an (empty) baseline: src must lint clean with
    # no suppressions needed.  A finding sneaking in fails this test
    # before it fails CI.
    root = Path(__file__).resolve().parents[2]
    baseline = load_baseline(root / "lint-baseline.json")
    assert baseline == {}
