"""Tests for the autofix machinery: edit application and the fixed-point
``apply_fixes`` driver (idempotency is a CI-enforced contract)."""

from __future__ import annotations

import ast
import shutil
from pathlib import Path

from repro.devtools.fixes import apply_edits, apply_fixes
from repro.devtools.lint import Edit, lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


# --------------------------------------------------------------------- #
# apply_edits
# --------------------------------------------------------------------- #


def test_apply_edits_replacement_and_insertion():
    source = "a = None\nb = 2\n"
    out, applied = apply_edits(
        source,
        [
            Edit(1, 4, 1, 8, "0"),  # None -> 0
            Edit(1, 0, 1, 0, "import math\n"),  # pure insertion
        ],
    )
    assert applied == 2
    assert out == "import math\na = 0\nb = 2\n"


def test_apply_edits_multiline_span():
    source = "x = (\n    None\n)\n"
    out, applied = apply_edits(source, [Edit(1, 4, 3, 1, "0")])
    assert applied == 1
    assert out == "x = 0\n"


def test_apply_edits_deduplicates_identical_edits():
    source = "seed = None\n"
    edit = Edit(1, 7, 1, 11, "0")
    out, applied = apply_edits(source, [edit, edit, edit])
    assert applied == 1
    assert out == "seed = 0\n"


def test_apply_edits_skips_overlapping_edits():
    source = "value = 123456\n"
    out, applied = apply_edits(
        source,
        [Edit(1, 8, 1, 14, "0"), Edit(1, 10, 1, 12, "9")],
    )
    # Edits apply bottom-up, so the later-starting edit wins and the
    # overlapping earlier one is dropped: exactly one edit lands.
    assert applied == 1
    assert out == "value = 12956\n"


def test_apply_edits_empty_list_is_identity():
    source = "def f():\n    return 1\n"
    out, applied = apply_edits(source, [])
    assert applied == 0
    assert out == source


# --------------------------------------------------------------------- #
# apply_fixes over the fixture tree
# --------------------------------------------------------------------- #


def test_apply_fixes_is_idempotent_and_behavior_preserving(tmp_path):
    tree = tmp_path / "fixtree"
    shutil.copytree(FIXTURES, tree)

    before = {d.code for d in lint_paths([str(tree)])}
    assert {"REP004", "REP010"} <= before

    applied, changed = apply_fixes([str(tree)])
    assert applied >= 3
    assert changed, "fixable fixtures must be rewritten"

    # Every rewritten file still parses (the fixes are mechanical,
    # never structural).
    for path in sorted(tree.rglob("*.py")):
        ast.parse(path.read_text(encoding="utf-8"))

    # Fixable findings are gone; report-only ones survive untouched.
    after = {d.code for d in lint_paths([str(tree)])}
    assert "REP004" not in after and "REP010" not in after
    assert {"REP011", "REP012", "REP013"} <= after

    # Second pass: nothing left to do — the CI self-check contract.
    applied2, changed2 = apply_fixes([str(tree)])
    assert applied2 == 0
    assert not changed2


def test_apply_fixes_respects_select(tmp_path):
    tree = tmp_path / "fixtree"
    shutil.copytree(FIXTURES, tree)
    applied, _ = apply_fixes([str(tree)], select={"REP004"})
    assert applied == 2  # the isinf rewrite plus its "import math" insertion
    codes = {d.code for d in lint_paths([str(tree)])}
    assert "REP004" not in codes
    assert "REP010" in codes  # untouched: not selected


def test_rep004_fix_rewrites_to_isinf(tmp_path):
    tree = tmp_path / "fixtree"
    shutil.copytree(FIXTURES, tree)
    apply_fixes([str(tree)], select={"REP004"})
    fixed = (tree / "repro" / "analysis" / "inf_compare.py").read_text()
    assert "return math.isinf(dist)" in fixed
    assert "import math" in fixed
    assert 'dist == float("inf")' not in fixed
