"""Tests for the Dinic max-flow solver and min-cut certification."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import random_host_switch_graph
from repro.core.hostswitch import HostSwitchGraph
from repro.partition import WeightedGraph, cut_size, partition_host_switch
from repro.partition.maxflow import Dinic, host_max_flow, min_cut_between_host_sets


class TestDinic:
    def test_single_path(self):
        d = Dinic(3)
        d.add_edge(0, 1, 5.0)
        d.add_edge(1, 2, 3.0)
        assert d.max_flow(0, 2) == pytest.approx(3.0)

    def test_parallel_paths_sum(self):
        d = Dinic(4)
        d.add_edge(0, 1, 2.0)
        d.add_edge(1, 3, 2.0)
        d.add_edge(0, 2, 4.0)
        d.add_edge(2, 3, 1.0)
        assert d.max_flow(0, 3) == pytest.approx(3.0)

    def test_classic_textbook_network(self):
        # CLRS-style example with cross edges.
        d = Dinic(6)
        for u, v, c in [(0, 1, 16), (0, 2, 13), (1, 3, 12), (2, 1, 4),
                        (3, 2, 9), (2, 4, 14), (4, 3, 7), (3, 5, 20), (4, 5, 4)]:
            d.add_edge(u, v, float(c))
        assert d.max_flow(0, 5) == pytest.approx(23.0)

    def test_bidirectional_edges(self):
        d = Dinic(3)
        d.add_edge(0, 1, 1.0, bidirectional=True)
        d.add_edge(1, 2, 1.0, bidirectional=True)
        assert d.max_flow(2, 0) == pytest.approx(1.0)

    def test_disconnected_zero_flow(self):
        d = Dinic(4)
        d.add_edge(0, 1, 5.0)
        assert d.max_flow(0, 3) == 0.0

    def test_min_cut_side_after_flow(self):
        d = Dinic(4)
        d.add_edge(0, 1, 1.0)
        d.add_edge(1, 2, 10.0)
        d.add_edge(2, 3, 10.0)
        d.max_flow(0, 3)
        side = d.min_cut_side(0)
        assert side == {0}  # the 0->1 edge is the bottleneck

    def test_source_equals_sink_rejected(self):
        with pytest.raises(ValueError):
            Dinic(2).max_flow(0, 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Dinic(2).add_edge(0, 1, -1.0)


class TestHostFlows:
    def test_host_flow_is_one(self, fig1_graph):
        # Hosts have a single port: flow between any two hosts is exactly 1.
        assert host_max_flow(fig1_graph, 0, 15) == pytest.approx(1.0)

    def test_same_host_rejected(self, fig1_graph):
        with pytest.raises(ValueError):
            host_max_flow(fig1_graph, 3, 3)

    def test_min_cut_between_halves_on_ring(self, fig1_graph):
        # 4-cycle of switches, 4 hosts each: separating switch-0 hosts from
        # switch-2 hosts must cut the two ring paths -> min cut 2.
        side_a = fig1_graph.hosts_of_switch(0)
        side_b = fig1_graph.hosts_of_switch(2)
        assert min_cut_between_host_sets(fig1_graph, side_a, side_b) == 2

    def test_min_cut_single_host_is_its_link(self, fig1_graph):
        cut = min_cut_between_host_sets(fig1_graph, [0], [8])
        assert cut == 1  # host 0's single uplink

    def test_input_validation(self, fig1_graph):
        with pytest.raises(ValueError, match="disjoint"):
            min_cut_between_host_sets(fig1_graph, [0, 1], [1, 2])
        with pytest.raises(ValueError, match="non-empty"):
            min_cut_between_host_sets(fig1_graph, [], [1])


class TestCertifiesPartitioner:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2_000))
    def test_partition_cut_upper_bounds_exact_min_cut(self, seed):
        """For the partitioner's own bisection of V = H ∪ S, the exact
        min cut separating the two host groups can never exceed the
        partition's cut (max-flow min-cut certification)."""
        g = random_host_switch_graph(20, 6, 8, seed=seed)
        parts, cut = partition_host_switch(g, 2, seed=seed, trials=1)
        m = g.num_switches
        side_a = [h for h in range(g.num_hosts) if parts[m + h] == 0]
        side_b = [h for h in range(g.num_hosts) if parts[m + h] == 1]
        if not side_a or not side_b:
            return  # degenerate host split (all hosts one side)
        exact = min_cut_between_host_sets(g, side_a, side_b)
        assert exact <= cut

    def test_clique_bisection_certificate(self, clique4_graph):
        parts, cut = partition_host_switch(clique4_graph, 2, seed=0, trials=2)
        wg = WeightedGraph.from_host_switch(clique4_graph)
        assert cut == cut_size(wg, parts)
        m = clique4_graph.num_switches
        side_a = [h for h in range(12) if parts[m + h] == 0]
        side_b = [h for h in range(12) if parts[m + h] == 1]
        exact = min_cut_between_host_sets(clique4_graph, side_a, side_b)
        assert exact <= cut
