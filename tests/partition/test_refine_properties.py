"""Property-based tests of FM refinement and multilevel invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.coarsen import coarsen_once, coarsen_to
from repro.partition.graph import WeightedGraph
from repro.partition.metrics import cut_size, part_weights
from repro.partition.refine import compute_gains, fm_refine


def random_graph(num_vertices: int, num_edges: int, seed: int) -> WeightedGraph:
    rng = np.random.default_rng(seed)
    edges = set()
    attempts = 0
    while len(edges) < num_edges and attempts < num_edges * 10:
        a, b = rng.integers(0, num_vertices, size=2)
        attempts += 1
        if a != b:
            edges.add((min(int(a), int(b)), max(int(a), int(b))))
    weighted = [(a, b, int(rng.integers(1, 5))) for a, b in edges]
    return WeightedGraph.from_edges(num_vertices, weighted)


class TestGainInvariant:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 5_000))
    def test_gain_equals_cut_delta(self, seed):
        """Moving vertex v changes the cut by exactly -gain(v)."""
        g = random_graph(12, 20, seed)
        rng = np.random.default_rng(seed)
        parts = [int(p) for p in rng.integers(0, 2, size=12)]
        gains = compute_gains(g, parts)
        v = int(rng.integers(0, 12))
        before = cut_size(g, parts)
        parts[v] = 1 - parts[v]
        after = cut_size(g, parts)
        assert after == before - gains[v]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 5_000))
    def test_gains_sum_relation(self, seed):
        """Sum of all gains = 2*(external) - 2*(internal) edge weight."""
        g = random_graph(10, 16, seed)
        rng = np.random.default_rng(seed)
        parts = [int(p) for p in rng.integers(0, 2, size=10)]
        gains = compute_gains(g, parts)
        cut = cut_size(g, parts)
        total_weight = sum(w for v in range(10) for _, w in g.adj[v]) // 2
        internal = total_weight - cut
        assert sum(gains) == 2 * cut - 2 * internal


class TestFMProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5_000))
    def test_refine_never_increases_cut_from_feasible(self, seed):
        g = random_graph(16, 28, seed)
        rng = np.random.default_rng(seed)
        # Feasible balanced start: exact half split.
        perm = rng.permutation(16)
        parts = [0] * 16
        for v in perm[:8]:
            parts[int(v)] = 1
        before = cut_size(g, parts)
        after = fm_refine(g, parts, target0=g.total_weight / 2)
        assert after <= before

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5_000))
    def test_refine_returns_true_cut(self, seed):
        g = random_graph(14, 24, seed)
        rng = np.random.default_rng(seed)
        parts = [int(p) for p in rng.integers(0, 2, size=14)]
        returned = fm_refine(g, parts, target0=g.total_weight / 2)
        assert returned == cut_size(g, parts)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 5_000), st.floats(0.02, 0.2))
    def test_balance_bound_respected(self, seed, eps):
        g = random_graph(20, 34, seed)
        rng = np.random.default_rng(seed)
        parts = [int(p) for p in rng.integers(0, 2, size=20)]
        target0 = g.total_weight / 2
        fm_refine(g, parts, target0, eps=eps)
        w = part_weights(g, parts, 2)
        max_vw = max(g.vwgt)
        assert max(w) <= target0 * (1 + eps) + max_vw + 1e-9


class TestCoarsenProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 5_000))
    def test_total_edge_weight_conserved_or_absorbed(self, seed):
        """Coarse inter-vertex weight + absorbed intra-pair weight equals
        the fine total."""
        g = random_graph(18, 30, seed)
        rng = np.random.default_rng(seed)
        coarse, mapping = coarsen_once(g, rng)
        fine_total = sum(w for v in range(18) for _, w in g.adj[v]) // 2
        coarse_total = sum(
            w for v in range(coarse.num_vertices) for _, w in coarse.adj[v]
        ) // 2
        absorbed = 0
        for v in range(18):
            for u, w in g.adj[v]:
                if u > v and mapping[u] == mapping[v]:
                    absorbed += w
        assert coarse_total + absorbed == fine_total

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 5_000))
    def test_hierarchy_mappings_compose(self, seed):
        g = random_graph(30, 60, seed)
        levels, mappings = coarsen_to(g, 8, seed=seed)
        # Composing all mappings lands every fine vertex in the coarsest.
        assignment = list(range(30))
        for mapping in mappings:
            assignment = [mapping[a] for a in assignment]
        coarsest = levels[-1]
        assert all(0 <= a < coarsest.num_vertices for a in assignment)
        # Weight is conserved through the composition.
        acc = [0] * coarsest.num_vertices
        for v, a in enumerate(assignment):
            acc[a] += g.vwgt[v]
        assert acc == coarsest.vwgt
