"""Tests for the multilevel partitioner (METIS substitute)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import random_host_switch_graph
from repro.partition import (
    WeightedGraph,
    bisect_graph,
    cut_size,
    partition_balance,
    partition_graph,
    partition_host_switch,
)
from repro.partition.coarsen import coarsen_once, coarsen_to
from repro.partition.metrics import part_weights
from repro.partition.refine import compute_gains, fm_refine
from repro.topologies import fat_tree, torus


def ring_graph(n: int) -> WeightedGraph:
    return WeightedGraph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def grid_graph(rows: int, cols: int) -> WeightedGraph:
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return WeightedGraph.from_edges(rows * cols, edges)


class TestWeightedGraph:
    def test_from_edges_merges_parallels(self):
        g = WeightedGraph.from_edges(3, [(0, 1), (1, 0), (1, 2)])
        w01 = dict(g.adj[0])[1]
        assert w01 == 2
        assert g.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            WeightedGraph.from_edges(2, [(0, 0)])

    def test_from_host_switch_layout(self, fig1_graph):
        wg = WeightedGraph.from_host_switch(fig1_graph)
        assert wg.num_vertices == 4 + 16
        assert wg.num_edges == fig1_graph.num_edges
        # host vertex m+h connects only to its switch.
        assert wg.adj[4 + 0] == [(0, 1)]

    def test_vertex_weights(self):
        g = WeightedGraph.from_edges(2, [(0, 1)], vertex_weights=[3, 5])
        assert g.total_weight == 8


class TestCutMetrics:
    def test_cut_size_counts_crossings(self):
        g = ring_graph(6)
        parts = [0, 0, 0, 1, 1, 1]
        assert cut_size(g, parts) == 2

    def test_balance_perfect(self):
        g = ring_graph(6)
        assert partition_balance(g, [0, 0, 0, 1, 1, 1], 2) == 1.0

    def test_part_weights(self):
        g = ring_graph(4)
        assert part_weights(g, [0, 1, 0, 1], 2) == [2, 2]


class TestCoarsen:
    def test_coarsen_preserves_total_weight(self):
        g = grid_graph(6, 6)
        rng = np.random.default_rng(0)
        coarse, mapping = coarsen_once(g, rng)
        assert coarse.total_weight == g.total_weight
        assert coarse.num_vertices < g.num_vertices
        assert max(mapping) == coarse.num_vertices - 1

    def test_cut_preserved_under_projection(self):
        g = grid_graph(5, 5)
        rng = np.random.default_rng(1)
        coarse, mapping = coarsen_once(g, rng)
        coarse_parts = [v % 2 for v in range(coarse.num_vertices)]
        fine_parts = [coarse_parts[mapping[v]] for v in range(g.num_vertices)]
        assert cut_size(coarse, coarse_parts) == cut_size(g, fine_parts)

    def test_hierarchy_shrinks(self):
        g = grid_graph(10, 10)
        levels, mappings = coarsen_to(g, 20, seed=2)
        sizes = [lv.num_vertices for lv in levels]
        assert sizes[0] == 100
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert len(mappings) == len(levels) - 1

    def test_weight_cap_respected(self):
        g = grid_graph(8, 8)
        levels, _ = coarsen_to(g, 8, seed=3)
        cap = max(1, int(1.5 * 64 / 8))
        assert max(levels[-1].vwgt) <= cap

    def test_leaf_matching_helps_star(self):
        # Star with many leaves: plain HEM matches only one pair per hub.
        center_edges = [(0, i) for i in range(1, 33)]
        g = WeightedGraph.from_edges(33, center_edges)
        rng = np.random.default_rng(4)
        coarse, _ = coarsen_once(g, rng, max_vertex_weight=8)
        assert coarse.num_vertices <= 20  # leaves paired two-hop


class TestFMRefine:
    def test_gains_convention(self):
        g = ring_graph(4)
        parts = [0, 1, 0, 1]  # fully alternating: every edge cut
        gains = compute_gains(g, parts)
        assert gains == [2, 2, 2, 2]

    def test_refine_improves_bad_bisection(self):
        g = grid_graph(6, 6)
        parts = [(v % 2) for v in range(36)]  # terrible: stripes
        before = cut_size(g, parts)
        after = fm_refine(g, parts, target0=18.0)
        assert after < before
        assert partition_balance(g, parts, 2) <= 1.2

    def test_refine_restores_feasibility(self):
        g = grid_graph(6, 6)
        parts = [0] * 30 + [1] * 6  # badly unbalanced
        fm_refine(g, parts, target0=18.0, eps=0.05)
        weights = part_weights(g, parts, 2)
        assert max(weights) <= 18 * 1.05 + 1


class TestBisectAndKway:
    def test_ring_bisection_is_optimal(self):
        g = ring_graph(32)
        parts = bisect_graph(g, seed=0)
        assert cut_size(g, parts) == 2  # a contiguous arc
        assert partition_balance(g, parts, 2) <= 1.07

    def test_grid_bisection_near_optimal(self):
        g = grid_graph(8, 8)
        parts = bisect_graph(g, seed=1)
        assert cut_size(g, parts) <= 12  # optimal is 8
        assert partition_balance(g, parts, 2) <= 1.07

    @pytest.mark.parametrize("nparts", [2, 3, 4, 7, 16])
    def test_kway_labels_and_balance(self, nparts):
        g = grid_graph(8, 8)
        parts = partition_graph(g, nparts, seed=2)
        assert set(parts) == set(range(nparts))
        assert partition_balance(g, parts, nparts) <= 1.35

    def test_single_part(self):
        g = ring_graph(8)
        assert partition_graph(g, 1, seed=0) == [0] * 8

    def test_invalid_nparts(self):
        with pytest.raises(ValueError):
            partition_graph(ring_graph(4), 0)

    def test_deterministic_under_seed(self):
        g = grid_graph(6, 6)
        assert partition_graph(g, 4, seed=9) == partition_graph(g, 4, seed=9)


class TestHostSwitchPartitioning:
    def test_fat_tree_bisection_near_full(self):
        # K=8 fat-tree has full bisection: ideal host-level cut ~ n/2 + core
        # links; at minimum the K^3/8 = 64 host-path bound should show up.
        g, _ = fat_tree(8)
        _, cut = partition_host_switch(g, 2, seed=0, trials=2)
        assert cut >= 40  # well above a torus-like cut for this size

    def test_cut_grows_with_parts(self, fig1_graph):
        cuts = [
            partition_host_switch(fig1_graph, p, seed=1, trials=2)[1]
            for p in (2, 4, 8)
        ]
        assert cuts[0] <= cuts[1] <= cuts[2]

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 1_000))
    def test_random_graphs_balanced(self, seed):
        hsg = random_host_switch_graph(24, 8, 7, seed=seed)
        parts, cut = partition_host_switch(hsg, 4, seed=seed, trials=1)
        wg = WeightedGraph.from_host_switch(hsg)
        assert partition_balance(wg, parts, 4) <= 1.4
        assert cut == cut_size(wg, parts)

    def test_torus_cut_smaller_than_fat_tree(self):
        gt, _ = torus(2, 4, 8, num_hosts=64, fill="round-robin")
        gf, _ = fat_tree(8)  # 128 hosts
        _, cut_t = partition_host_switch(gt, 2, seed=3, trials=2)
        _, cut_f = partition_host_switch(gf, 2, seed=3, trials=2)
        # Per-host bisection: fat-tree's full bisection beats the torus.
        assert cut_f / 128 > cut_t / 64
