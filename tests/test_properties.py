"""Cross-cutting property-based tests (hypothesis) on core invariants.

These complement the per-module tests by generating whole random
host-switch graphs and checking relations *between* subsystems: metrics vs
networkx oracles, annealing vs bounds, routing vs metrics, partitioning vs
brute force, fluid simulation conservation laws.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import diameter_lower_bound, h_aspl_lower_bound
from repro.core.construct import random_host_switch_graph
from repro.core.metrics import h_aspl_and_diameter, switch_distance_matrix
from repro.core.operations import SwingMove


# A moderate catalogue of feasible (n, m, r) triples for generation.
CONFIGS = [(12, 4, 7), (18, 6, 7), (24, 6, 9), (30, 10, 7), (40, 8, 10)]

graph_strategy = st.tuples(
    st.sampled_from(CONFIGS), st.integers(0, 10_000)
)


def build(config_seed):
    (n, m, r), seed = config_seed
    return random_host_switch_graph(n, m, r, seed=seed)


class TestMetricInvariants:
    @settings(max_examples=40, deadline=None)
    @given(graph_strategy)
    def test_bounds_always_hold(self, cs):
        g = build(cs)
        aspl, diam = h_aspl_and_diameter(g)
        n, r = g.num_hosts, g.radix
        assert aspl >= h_aspl_lower_bound(n, r) - 1e-12
        assert diam >= diameter_lower_bound(n, r)
        assert 2.0 <= aspl <= diam

    @settings(max_examples=25, deadline=None)
    @given(graph_strategy)
    def test_matches_networkx_oracle(self, cs):
        import networkx as nx

        g = build(cs)
        nxg = g.to_networkx()
        hosts = [("h", i) for i in range(g.num_hosts)]
        lengths = dict(nx.all_pairs_shortest_path_length(nxg))
        total = sum(
            lengths[a][b] for i, a in enumerate(hosts) for b in hosts[i + 1 :]
        )
        n = g.num_hosts
        expected = total / (n * (n - 1) / 2)
        assert h_aspl_and_diameter(g)[0] == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(graph_strategy)
    def test_triangle_inequality_on_switch_distances(self, cs):
        g = build(cs)
        d = switch_distance_matrix(g)
        m = g.num_switches
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b, c = rng.integers(0, m, size=3)
            assert d[a, c] <= d[a, b] + d[b, c]


class TestMoveInvariants:
    @settings(max_examples=40, deadline=None)
    @given(graph_strategy, st.integers(0, 1_000))
    def test_random_swing_sequences_preserve_structure(self, cs, move_seed):
        """Apply a random sequence of legal swings; n, port usage totals,
        and radix feasibility are conserved throughout."""
        g = build(cs)
        rng = np.random.default_rng(move_seed)
        n0 = g.num_hosts
        edges0 = g.num_switch_edges
        for _ in range(10):
            edges = list(g.switch_edges())
            if not edges:
                break
            a, b = edges[int(rng.integers(0, len(edges)))]
            if rng.integers(0, 2):
                a, b = b, a
            sc = int(rng.integers(0, g.num_switches))
            move = SwingMove(a, b, sc)
            if move.is_legal(g):
                move.apply(g)
        g.validate()
        assert g.num_hosts == n0
        assert g.num_switch_edges == edges0


class TestRoutingInvariants:
    @settings(max_examples=20, deadline=None)
    @given(graph_strategy)
    def test_route_lengths_equal_bfs_distances(self, cs):
        from repro.routing import RoutingTables

        g = build(cs)
        tables = RoutingTables(g)
        d = switch_distance_matrix(g)
        m = g.num_switches
        for u in range(m):
            for v in range(m):
                assert len(tables.switch_route(u, v)) - 1 == d[u, v]

    @settings(max_examples=12, deadline=None)
    @given(graph_strategy, st.integers(0, 100))
    def test_ecmp_diversity_counts_consistent(self, cs, seed):
        from repro.routing import RoutingTables

        g = build(cs)
        tables = RoutingTables(g)
        rng = np.random.default_rng(seed)
        u, v = rng.integers(0, g.num_switches, size=2)
        diversity = tables.path_diversity(int(u), int(v))
        assert diversity >= 1
        # Sampled ECMP routes must all be shortest.
        for _ in range(5):
            route = tables.switch_route(int(u), int(v), rng=rng)
            assert len(route) - 1 == tables.distance(int(u), int(v))


class TestPartitionInvariants:
    @settings(max_examples=12, deadline=None)
    @given(graph_strategy, st.integers(2, 6))
    def test_partition_covers_all_vertices(self, cs, nparts):
        from repro.partition import WeightedGraph, cut_size, partition_graph

        g = build(cs)
        wg = WeightedGraph.from_host_switch(g)
        parts = partition_graph(wg, nparts, seed=0)
        assert len(parts) == wg.num_vertices
        assert set(parts) <= set(range(nparts))
        # Cut is bounded by the total edge count.
        assert 0 <= cut_size(wg, parts) <= wg.num_edges

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 1_000))
    def test_bisection_no_worse_than_random_split(self, seed):
        from repro.partition import WeightedGraph, bisect_graph, cut_size

        g = random_host_switch_graph(24, 8, 7, seed=seed)
        wg = WeightedGraph.from_host_switch(g)
        parts = bisect_graph(wg, seed=seed)
        rng = np.random.default_rng(seed)
        random_parts = list(rng.permutation([0, 1] * (wg.num_vertices // 2)))
        assert cut_size(wg, parts) <= cut_size(wg, random_parts)


class TestFluidConservation:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.floats(1.0, 1e6), min_size=1, max_size=8),
        st.integers(0, 1_000),
    )
    def test_bytes_conserved_across_random_flows(self, sizes, seed):
        """Every started flow completes and total bytes are conserved."""
        from repro.simulation.engine import Event, Kernel
        from repro.simulation.fluid import FluidScheduler

        kernel = Kernel()
        rng = np.random.default_rng(seed)
        num_links = 5
        sched = FluidScheduler(kernel, np.full(num_links, 1e6))
        events = []
        for size in sizes:
            links = rng.choice(num_links, size=int(rng.integers(1, 4)), replace=False)
            ev = Event()
            events.append(ev)
            kernel.call_later(float(rng.random()), sched.start_flow, links, size, ev)
        kernel.run()
        assert all(ev.fired for ev in events)
        assert sched.completed_flows == len(sizes)
        assert sched.total_bytes == pytest.approx(sum(sizes))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 500))
    def test_shared_link_throughput_never_exceeds_capacity(self, nflows, seed):
        from repro.simulation.engine import Event, Kernel
        from repro.simulation.fluid import FluidScheduler

        kernel = Kernel()
        capacity = 1e6
        sched = FluidScheduler(kernel, np.asarray([capacity]))
        size = 1e5
        for _ in range(nflows):
            sched.start_flow([0], size, Event())
        end = kernel.run()
        # All flows share one link: total time >= total bytes / capacity.
        assert end >= nflows * size / capacity - 1e-9


class TestAnnealingInvariants:
    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from(CONFIGS), st.integers(0, 100))
    def test_anneal_output_always_valid_and_bounded(self, config, seed):
        from repro.core.annealing import AnnealingSchedule, anneal

        n, m, r = config
        g = random_host_switch_graph(n, m, r, seed=seed)
        res = anneal(g, schedule=AnnealingSchedule(num_steps=120), seed=seed)
        res.graph.validate()
        assert res.graph.num_hosts == n
        assert res.graph.num_switches == m
        assert res.h_aspl >= h_aspl_lower_bound(n, r) - 1e-12
        assert res.graph.is_switch_graph_connected()
