"""Golden-value regression tests.

Pins exact, deterministic quantities (bounds, m_opt predictions, h-ASPL of
structured topologies) so subtle regressions in the metric/bound kernels
cannot slip through.  All values were cross-checked by hand or against the
paper where it states them.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    diameter_lower_bound,
    h_aspl_lower_bound,
    moore_aspl_lower_bound,
)
from repro.core.metrics import h_aspl, h_aspl_and_diameter
from repro.core.moore import continuous_moore_bound, optimal_switch_count
from repro.topologies import dragonfly, fat_tree, hypercube, slim_fly, torus


class TestBoundGoldens:
    @pytest.mark.parametrize(
        "n,r,expected",
        [
            (1024, 24, 4),
            (1024, 12, 4),
            (1024, 15, 4),  # 14^3 = 2744 >= 1023 > 14^2
            (128, 12, 4),   # 11^2 = 121 < 127
            (128, 24, 3),
            (10, 4, 3),
            (8, 8, 2),
        ],
    )
    def test_diameter_bounds(self, n, r, expected):
        assert diameter_lower_bound(n, r) == expected

    @pytest.mark.parametrize(
        "n,r,expected",
        [
            # alpha = (r-1)^(D-2) - ceil((n-1-(r-1)^(D-2))/(r-2))
            (1024, 24, 4 - (529 - 23) / 1023),
            (10, 4, 3.0),  # n = (r-1)^2 + 1 exactly
            (8, 8, 2.0),
        ],
    )
    def test_h_aspl_bounds(self, n, r, expected):
        assert h_aspl_lower_bound(n, r) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "N,K,expected",
        [
            (10, 3, 5 / 3),     # Petersen
            (5, 4, 1.0),        # complete graph
            (50, 7, (7 + 42 * 2) / 49),
            (7, 2, 2.0),        # ring bound
        ],
    )
    def test_moore_goldens(self, N, K, expected):
        assert moore_aspl_lower_bound(N, K) == pytest.approx(expected)


class TestMoptGoldens:
    @pytest.mark.parametrize(
        "n,r,m_expected",
        [
            (1024, 24, 79),
            (1024, 16, 183),  # paper: 183
            (1024, 12, 239),
            (128, 24, 8),     # paper: 8 (clique regime)
            (256, 12, 55),
            (64, 10, 11),
        ],
    )
    def test_m_opt_predictions(self, n, r, m_expected):
        assert optimal_switch_count(n, r)[0] == m_expected

    def test_m_opt_1024_15_near_paper(self):
        # Paper reports 194; the flat minimum makes 194/195 a tie region.
        assert abs(optimal_switch_count(1024, 15)[0] - 194) <= 1

    def test_continuous_moore_at_m_opt(self):
        _, bound = optimal_switch_count(1024, 24)
        assert bound == pytest.approx(3.8367560528607916)


class TestTopologyGoldens:
    def test_torus_5d_paper_instance(self):
        g, spec = torus(5, 3, 15, num_hosts=1024)
        assert spec.num_switches == 243
        assert spec.max_hosts == 1215
        aspl, diam = h_aspl_and_diameter(g)
        assert diam == 7.0  # 5 * floor(3/2) = 5 switch hops + 2
        assert aspl == pytest.approx(5.303454148338221)  # sequential fill

    def test_dragonfly_a8_paper_instance(self):
        g, spec = dragonfly(8, num_hosts=1024)
        assert (spec.num_switches, spec.radix, spec.max_hosts) == (264, 15, 1056)
        aspl, diam = h_aspl_and_diameter(g)
        assert diam == 5.0
        assert aspl == pytest.approx(4.676991691104594, rel=1e-9)  # sequential fill

    def test_fat_tree_16_paper_instance(self):
        g, spec = fat_tree(16)
        assert (spec.num_switches, spec.radix, spec.max_hosts) == (320, 16, 1024)
        aspl, diam = h_aspl_and_diameter(g)
        assert diam == 6.0
        assert aspl == pytest.approx(5.863147605083089)

    def test_hypercube_golden(self):
        g, _ = hypercube(4, 6, num_hosts=32)
        # 2 hosts/switch; ASPL of Q4 = (sum_k k*C(4,k)) / 15 = 32/15;
        # Formula (1): A = ASPL * (mn - n)/(mn - m) + 2, n=32, m=16.
        expected = (32 / 15) * (512 - 32) / (512 - 16) + 2.0
        assert h_aspl(g) == pytest.approx(expected)

    def test_slim_fly_q5_golden(self):
        g, spec = slim_fly(5)
        assert spec.num_switches == 50
        assert spec.params["degree"] == 7
        aspl, diam = h_aspl_and_diameter(g)
        assert diam == 4.0
        # Regular host-switch graph: Formula (1) from the MMS ASPL.
        from repro.core.metrics import switch_aspl

        expected = switch_aspl(g) * (50 * 200 - 200) / (50 * 200 - 50) + 2.0
        assert aspl == pytest.approx(expected)


class TestFormulaGoldens:
    def test_continuous_moore_equals_paper_shape(self):
        # Formula 2 at a divisible point vs continuous extension.
        assert continuous_moore_bound(1024, 256, 24) == pytest.approx(
            moore_aspl_lower_bound(256, 20) * (256 * 1024 - 1024) / (256 * 1024 - 256)
            + 2.0
        )
