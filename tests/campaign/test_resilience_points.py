"""Resilience as a first-class campaign point kind (spec/executor/store)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.resilience import ResilienceSweepResult, failure_sweep
from repro.campaign.executor import run_campaign
from repro.campaign.report import format_report, format_status
from repro.campaign.spec import (
    POINT_KINDS,
    SpecError,
    load_spec,
    normalize_point,
    point_digest,
)
from repro.campaign.store import CampaignStore
from repro.obs import MemorySink, TelemetryRegistry


def resilience_spec(name="res-unit", **overrides):
    doc = {
        "name": name,
        "kind": "resilience",
        "grid": {"n": [24], "r": [4], "seed": [0, 1]},
        "defaults": {"m": 12, "failures": 2, "trials": 6, "mode": "link"},
    }
    doc.update(overrides)
    return load_spec(doc)


class TestSpecNormalization:
    def test_point_kinds_registered(self):
        assert POINT_KINDS == ("orp", "resilience", "compose")

    def test_resilience_defaults_made_explicit(self):
        point = normalize_point({"kind": "resilience", "n": 24, "r": 4})
        assert point == {
            "kind": "resilience",
            "n": 24,
            "r": 4,
            "m": None,
            "construction": "random",
            "graph_seed": 0,
            "mode": "link",
            "failures": 1,
            "trials": 50,
            "seed": 0,
            "backend": None,
        }

    def test_orp_digest_unchanged_by_explicit_kind(self):
        # Pre-PR specs carry no "kind" key; their digests must not move.
        bare = normalize_point({"n": 16, "r": 4, "seed": 3})
        tagged = normalize_point({"n": 16, "r": 4, "seed": 3, "kind": "orp"})
        assert "kind" not in bare
        assert bare == tagged
        assert point_digest(bare) == point_digest(tagged)

    def test_resilience_digest_differs_from_orp(self):
        orp = normalize_point({"n": 24, "r": 4})
        res = normalize_point({"kind": "resilience", "n": 24, "r": 4})
        assert point_digest(orp) != point_digest(res)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            normalize_point({"kind": "latency", "n": 24, "r": 4})

    def test_validation_errors(self):
        base = {"kind": "resilience", "n": 24, "r": 4}
        with pytest.raises(SpecError, match="mode"):
            normalize_point({**base, "mode": "cable"})
        with pytest.raises(SpecError, match="failures"):
            normalize_point({**base, "failures": 0})
        with pytest.raises(SpecError, match="trials"):
            normalize_point({**base, "trials": 0})
        with pytest.raises(SpecError, match="unknown"):
            normalize_point({**base, "steps": 100})

    def test_top_level_kind_applies_to_all_points(self):
        spec = resilience_spec()
        assert len(spec.points) == 2
        assert all(p["kind"] == "resilience" for p in spec.points)

    def test_kind_in_both_places_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            resilience_spec(defaults={"kind": "resilience", "trials": 6})


class TestExecutorAndStore:
    def test_campaign_runs_on_partitioning_fabric(self, tmp_path):
        # n=24, m=12, r=4 with 2 simultaneous failures partitions some
        # trials: the acceptance scenario — no raise, finite metrics.
        spec = resilience_spec()
        result = run_campaign(spec, tmp_path)
        assert result.count("solved") == 2
        store = CampaignStore(tmp_path, spec.name)
        for digest in spec.digests():
            sweep = store.load_result(digest)
            assert isinstance(sweep, ResilienceSweepResult)
            assert len(sweep.connected_h_aspl) == 6
            assert all(math.isfinite(f) for f in sweep.reachable_pair_fraction)

    def test_warm_rerun_is_cached(self, tmp_path):
        spec = resilience_spec()
        run_campaign(spec, tmp_path)
        second = run_campaign(spec, tmp_path)
        assert second.count("cached") == 2
        assert not second.solver_work_done

    def test_store_round_trip_matches_direct_sweep(self, tmp_path):
        spec = resilience_spec()
        run_campaign(spec, tmp_path)
        store = CampaignStore(tmp_path, spec.name)
        point = spec.points[0]
        stored = store.load_result(point_digest(point))
        from repro.campaign.executor import _build_point_graph

        direct = failure_sweep(
            _build_point_graph(point),
            mode=point["mode"],
            failures=point["failures"],
            trials=point["trials"],
            seed=point["seed"],
        )
        assert stored == direct

    def test_telemetry_trace_has_fault_counters(self, tmp_path):
        registry = TelemetryRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        spec = resilience_spec()
        run_campaign(spec, tmp_path, telemetry=registry)
        # 2 points x 6 trials x 2 failures injected faults.
        assert registry.counter("faults.injected").value == 24
        names = {r.get("name") for r in sink.events}
        assert "resilience.sweep" in names

    def test_report_renders_resilience_columns(self, tmp_path):
        spec = resilience_spec()
        run_campaign(spec, tmp_path)
        report = format_report(spec, tmp_path)
        assert "degraded" in report
        assert "disc" in report
        assert "2/2 points solved" in report
        status = format_status(spec, tmp_path)
        assert "linkx2" in status
