"""Leaderboard index, corruption tolerance, and concurrent-writer fixes."""

from __future__ import annotations

import dataclasses
import json
import os
import random
import threading

import pytest

from repro.campaign.index import (
    IndexEntry,
    best_by_nr,
    best_candidates,
    decode_index_text,
    encode_entry,
)
from repro.campaign.spec import load_spec, normalize_point, point_digest
from repro.campaign.store import CampaignStore, StoreError
from repro.core.annealing import AnnealingSchedule
from repro.core.solver import solve_orp


def _point(n=16, r=4, **overrides):
    base = {"n": n, "r": r, "steps": 60, "restarts": 1}
    base.update(overrides)
    return normalize_point(base)


@pytest.fixture(scope="module")
def solution():
    return solve_orp(16, 4, schedule=AnnealingSchedule(num_steps=60), seed=0)


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path, "idx")


def _save(store, solution, *, n=16, r=4, seed=0, h_aspl=None):
    """Store a (possibly fabricated-score) variant of the module solution."""
    point = _point(n=n, r=r, seed=seed)
    sol = solution if h_aspl is None else dataclasses.replace(solution, h_aspl=h_aspl)
    digest = point_digest(point)
    store.save_result(digest, point, sol)
    return digest


class TestIndexCodec:
    def test_entry_round_trip(self):
        entry = IndexEntry(digest="a" * 64, n=16, r=4, h_aspl=3.2727272727272725)
        [back] = decode_index_text(encode_entry(entry))
        assert back == entry  # floats survive bit-identically

    def test_torn_and_foreign_lines_skipped(self):
        good = encode_entry(IndexEntry(digest="a" * 64, n=16, r=4, h_aspl=3.5))
        text = (
            good
            + '{"digest": "b", "n": 16}\n'  # missing keys
            + "{ torn"  # no trailing newline: a mid-write tail
        )
        assert decode_index_text(text) == decode_index_text(good)

    def test_bool_typed_fields_rejected(self):
        line = json.dumps({"digest": "a", "n": True, "r": 4, "h_aspl": 3.0}) + "\n"
        assert decode_index_text(line) == []

    def test_best_candidates_tie_breaks_to_smallest_digest(self):
        entries = [
            IndexEntry(digest="b" * 64, n=16, r=4, h_aspl=3.5),
            IndexEntry(digest="a" * 64, n=16, r=4, h_aspl=3.5),
            IndexEntry(digest="c" * 64, n=16, r=4, h_aspl=3.0),
            IndexEntry(digest="d" * 64, n=20, r=4, h_aspl=1.0),
        ]
        ranked = best_candidates(entries, 16, 4)
        assert [e.digest[0] for e in ranked] == ["c", "a", "b"]
        board = best_by_nr(entries)
        assert board[(16, 4)].digest == "c" * 64
        assert board[(20, 4)].digest == "d" * 64


class TestIndexMaintenance:
    def test_save_result_appends_entry(self, store, solution):
        digest = _save(store, solution)
        entries = store.index_entries()
        assert [e.digest for e in entries] == [digest]
        assert entries[0].n == 16 and entries[0].r == 4
        assert entries[0].h_aspl == solution.h_aspl

    def test_kinded_points_not_indexed(self, store, solution):
        from repro.compose.fabric import build_fabric

        _save(store, solution)
        result = build_fabric(16, 8, copies=2, steps=50)
        store.save_result("f" * 64, {"kind": "compose", "n": 16, "r": 8}, result)
        assert len(store.index_entries()) == 1

    def test_legacy_store_migrates_on_first_save(self, store, solution):
        a = _save(store, solution, seed=0)
        b = _save(store, solution, seed=1, h_aspl=solution.h_aspl + 1)
        store.index_path.unlink()  # a store from before the index existed
        c = _save(store, solution, seed=2, h_aspl=solution.h_aspl + 2)
        assert {e.digest for e in store.index_entries()} == {a, b, c}

    def test_rebuild_counts_unreadable_points(self, store, solution):
        good = _save(store, solution, seed=0)
        bad = _save(store, solution, seed=1)
        (store.point_dir(bad) / "result.json").write_text("{ torn")
        stats = store.rebuild_index()
        assert stats.entries == 1 and stats.skipped == 1
        assert stats.skipped_digests == (bad,)
        assert [e.digest for e in store.index_entries()] == [good]
        assert store.unreadable_points() == [bad]

    def test_append_is_single_atomic_write(self, store, solution):
        # Concurrent pool workers append without locks; every record must
        # land whole even when saves interleave across threads.
        barrier = threading.Barrier(4)

        def save(seed):
            barrier.wait()
            _save(store, solution, seed=seed, h_aspl=solution.h_aspl + seed)

        threads = [threading.Thread(target=save, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store.index_entries()) == 4


class TestBestForFromIndex:
    def test_answers_without_scanning(self, store, solution, monkeypatch):
        digest = _save(store, solution)
        monkeypatch.setattr(
            store,
            "digests",
            lambda: pytest.fail("best_for must not scan point directories"),
        )
        best = store.best_for(16, 4)
        assert best is not None and best.digest == digest

    def test_missing_index_means_no_answer_not_a_scan(self, store, solution):
        _save(store, solution)
        store.index_path.unlink()
        assert store.best_for(16, 4) is None
        store.rebuild_index()
        assert store.best_for(16, 4) is not None

    def test_corrupt_point_does_not_poison_other_keys(self, store, solution):
        _save(store, solution, n=16, r=4, seed=0)
        bad = _save(store, solution, n=20, r=4, seed=0)
        (store.point_dir(bad) / "point.json").write_text("{ torn")
        (store.point_dir(bad) / "result.json").write_text("{ torn")
        best = store.best_for(16, 4)  # the old scan raised StoreError here
        assert best is not None and best.h_aspl == solution.h_aspl

    def test_deleted_winner_falls_through_to_next_candidate(self, store, solution):
        best_digest = _save(store, solution, seed=0, h_aspl=3.0)
        runner_up = _save(store, solution, seed=1, h_aspl=3.5)
        import shutil

        shutil.rmtree(store.point_dir(best_digest))
        best = store.best_for(16, 4)
        assert best is not None and best.digest == runner_up

    def test_scan_oracle_counts_skipped(self, store, solution):
        _save(store, solution, seed=0)
        bad = _save(store, solution, seed=1)
        (store.point_dir(bad) / "point.json").write_text("{ torn")
        scan = store.best_for_scan(16, 4)
        assert scan.best is not None and scan.skipped == 1

    def test_property_index_equals_scan_under_interleavings(self, store, solution):
        # Any interleaving of saves across several (n, r) keys must leave
        # the index answer bit-identical to a from-scratch full scan.
        rng = random.Random(7)
        shapes = [(16, 4), (20, 4), (16, 5)]
        for step in range(24):
            n, r = rng.choice(shapes)
            _save(
                store,
                solution,
                n=n,
                r=r,
                seed=rng.randrange(1000),
                h_aspl=round(3.0 + rng.random(), 6),
            )
            for shape in shapes:
                indexed = store.best_for(*shape)
                scanned = store.best_for_scan(*shape).best
                if scanned is None:
                    assert indexed is None
                else:
                    assert indexed is not None
                    assert indexed.digest == scanned.digest
                    assert indexed.h_aspl == scanned.h_aspl


class TestReaderHardening:
    def test_digests_hide_tmp_only_debris(self, store, solution):
        digest = _save(store, solution)
        debris = store.point_dir("0" * 64)
        debris.mkdir(parents=True)
        (debris / "result.json.tmp").write_text("{ partial")
        assert store.digests() == [digest]

    def test_stray_tmp_next_to_artifacts_is_harmless(self, store, solution):
        digest = _save(store, solution)
        (store.point_dir(digest) / "best.hsg.tmp").write_text("partial")
        assert store.digests() == [digest]
        assert store.best_for(16, 4) is not None

    def test_result_not_yet_replaced_is_pending_not_error(self, store):
        pdir = store.point_dir("1" * 64)
        pdir.mkdir(parents=True)
        (pdir / "point.json").write_text(json.dumps(_point()))
        assert store.point_state("1" * 64) == "pending"
        assert store.best_for_scan(16, 4).best is None

    def test_checkpoint_vanishing_mid_read_returns_none(self, store, monkeypatch):
        import repro.campaign.store as store_mod

        store.save_checkpoint("2" * 64, {"format": "x"})
        real_read = store_mod._read_json

        def vanish(path):
            if path.name == "checkpoint.json":
                os.unlink(path)
                raise StoreError(f"cannot read store artifact {path}: gone")
            return real_read(path)

        monkeypatch.setattr(store_mod, "_read_json", vanish)
        assert store.load_checkpoint("2" * 64) is None

    def test_corrupt_checkpoint_still_raises(self, store):
        pdir = store.point_dir("3" * 64)
        pdir.mkdir(parents=True)
        (pdir / "checkpoint.json").write_text("{ torn")
        with pytest.raises(StoreError, match="cannot read"):
            store.load_checkpoint("3" * 64)


class TestSaveSpecRace:
    DOC = {"name": "idx", "grid": {"n": [16], "r": [4]}, "defaults": {"steps": 60}}

    def test_concurrent_different_specs_exactly_one_wins(self, store):
        specs = [
            load_spec(dict(self.DOC, defaults={"steps": 60 + i})) for i in range(4)
        ]
        barrier = threading.Barrier(len(specs))
        errors: list[BaseException | None] = [None] * len(specs)

        def submit(i):
            barrier.wait()
            try:
                store.save_spec(specs[i])
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors[i] = exc

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(len(specs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        losers = [e for e in errors if e is not None]
        assert len(losers) == len(specs) - 1
        assert all(isinstance(e, StoreError) for e in losers)
        # The surviving document is exactly one submitter's spec, whole.
        on_disk = json.loads(store.spec_path.read_text())
        assert on_disk in [dict(s.raw) for s in specs]
        assert list(store.dir.glob("spec.json.*.tmp")) == []

    def test_identical_concurrent_specs_all_succeed(self, store):
        spec = load_spec(self.DOC)
        barrier = threading.Barrier(4)
        errors: list[BaseException] = []

        def submit():
            barrier.wait()
            try:
                store.save_spec(spec)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestExecutorCorruptionTolerance:
    def test_corrupt_cached_result_is_resolved_not_fatal(self, tmp_path):
        from repro.campaign.executor import run_campaign

        doc = {
            "name": "heal",
            "grid": {"n": [16], "r": [4]},
            "defaults": {"steps": 60, "restarts": 1},
        }
        spec = load_spec(doc)
        store = CampaignStore(tmp_path, "heal")
        first = run_campaign(spec, tmp_path)
        assert first.count("solved") == 1
        [digest] = [o.digest for o in first.outcomes]
        (store.point_dir(digest) / "result.json").write_text("{ torn")
        second = run_campaign(spec, tmp_path)  # used to raise StoreError
        assert second.count("solved") == 1
        assert store.load_result(digest).h_aspl is not None
        assert store.unreadable_points() == []


class TestStatusSurfacing:
    def test_status_reports_unreadable_count(self, tmp_path, solution, capsys):
        from repro.campaign.report import format_status

        doc = {
            "name": "rot",
            "grid": {"n": [16], "r": [4], "seed": [0, 1]},
            "defaults": {"steps": 60, "restarts": 1},
        }
        spec = load_spec(doc)
        store = CampaignStore(tmp_path, "rot")
        store.save_spec(spec)
        bad = _save(store, solution, seed=0)
        _save(store, solution, seed=1)
        (store.point_dir(bad) / "result.json").write_text("{ torn")
        text = format_status(spec, tmp_path)
        assert "1 unreadable point(s) skipped by queries" in text
        assert bad[:12] in text

    def test_status_silent_when_clean(self, tmp_path, solution):
        from repro.campaign.report import format_status

        doc = {
            "name": "clean",
            "grid": {"n": [16], "r": [4]},
            "defaults": {"steps": 60, "restarts": 1},
        }
        spec = load_spec(doc)
        store = CampaignStore(tmp_path, "clean")
        store.save_spec(spec)
        _save(store, solution)
        assert "unreadable" not in format_status(spec, tmp_path)
