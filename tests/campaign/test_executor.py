"""Tests for campaign execution: caching, drain/resume, retries, timeouts."""

from __future__ import annotations

from dataclasses import asdict

import pytest

import repro.campaign.executor as executor_mod
from repro.campaign.executor import _execute_point, run_campaign
from repro.campaign.report import campaign_status, format_report, format_status
from repro.campaign.spec import ExecutorConfig, load_spec, point_digest
from repro.campaign.store import CampaignStore
from repro.obs import MemorySink, TelemetryRegistry


def make_spec(name="exec-unit", seeds=(0, 1), steps=300, **executor):
    executor.setdefault("checkpoint_every", 100)
    return load_spec(
        {
            "name": name,
            "grid": {"n": [24], "r": [6], "seed": list(seeds)},
            "defaults": {"steps": steps, "restarts": 2},
            "executor": executor,
        }
    )


def strip_wall(summary) -> dict:
    data = asdict(summary)
    data.pop("wall_time_s")
    return data


def assert_stores_identical(spec, ref_root, other_root):
    ref = CampaignStore(ref_root, spec.name)
    other = CampaignStore(other_root, spec.name)
    for digest in spec.digests():
        assert ref.result_graph_digest(digest) == other.result_graph_digest(digest)
        a, b = ref.load_result(digest), other.load_result(digest)
        assert a.h_aspl == b.h_aspl
        assert a.diameter == b.diameter
        assert [strip_wall(s) for s in a.restarts] == [
            strip_wall(s) for s in b.restarts
        ]


class TestRunAndCache:
    def test_solves_and_stores_every_point(self, tmp_path):
        spec = make_spec()
        result = run_campaign(spec, tmp_path)
        assert result.count("solved") == 2
        assert not result.interrupted
        assert result.solver_work_done
        store = CampaignStore(tmp_path, spec.name)
        for digest in spec.digests():
            assert store.point_state(digest) == "solved"
            assert not store.has_checkpoint(digest)

    def test_warm_rerun_does_zero_solver_work(self, tmp_path):
        spec = make_spec()
        run_campaign(spec, tmp_path)

        def exploding(*args, **kwargs):  # any solver call is a failure
            raise AssertionError("solver ran on a warm store")

        executor_mod_solve = executor_mod._solve_point
        executor_mod._solve_point = exploding
        try:
            warm = run_campaign(spec, tmp_path)
        finally:
            executor_mod._solve_point = executor_mod_solve
        assert warm.count("cached") == 2
        assert not warm.solver_work_done
        assert "2 cached" in warm.summary()
        for outcome in warm.outcomes:
            assert outcome.h_aspl is not None

    def test_cached_points_match_solved_values(self, tmp_path):
        spec = make_spec()
        first = run_campaign(spec, tmp_path)
        warm = run_campaign(spec, tmp_path)
        assert {o.digest: o.h_aspl for o in warm.outcomes} == {
            o.digest: o.h_aspl for o in first.outcomes
        }


class TestInterruptResume:
    def test_drain_and_resume_bit_identical(self, tmp_path):
        spec = make_spec()
        ref_root = tmp_path / "ref"
        res_root = tmp_path / "res"
        run_campaign(spec, ref_root)

        killed = run_campaign(spec, res_root, stop_after_checkpoints=3)
        assert killed.interrupted
        assert killed.count("interrupted") >= 1
        store = CampaignStore(res_root, spec.name)
        # The drained point left a resumable checkpoint behind.
        states = [store.point_state(d) for d in spec.digests()]
        assert "checkpointed" in states

        resumed = run_campaign(spec, res_root)
        assert not resumed.interrupted
        assert resumed.count("solved") + resumed.count("cached") == 2
        assert_stores_identical(spec, ref_root, res_root)
        for digest in spec.digests():
            assert not store.has_checkpoint(digest)

    def test_points_after_the_drain_are_marked_interrupted(self, tmp_path):
        spec = make_spec()
        killed = run_campaign(spec, tmp_path, stop_after_checkpoints=1)
        statuses = [o.status for o in killed.outcomes]
        # First point dies at its first checkpoint; the second never starts.
        assert statuses == ["interrupted", "interrupted"]

    def test_double_kill_then_resume(self, tmp_path):
        spec = make_spec()
        ref_root = tmp_path / "ref"
        res_root = tmp_path / "res"
        run_campaign(spec, ref_root)
        run_campaign(spec, res_root, stop_after_checkpoints=2)
        run_campaign(spec, res_root, stop_after_checkpoints=3)
        final = run_campaign(spec, res_root)
        assert not final.interrupted
        assert_stores_identical(spec, ref_root, res_root)

    def test_stop_after_checkpoints_validation(self, tmp_path):
        with pytest.raises(ValueError, match="stop_after_checkpoints"):
            run_campaign(make_spec(), tmp_path, stop_after_checkpoints=0)

    def test_jobs_validation(self, tmp_path):
        with pytest.raises(ValueError, match="jobs"):
            run_campaign(make_spec(), tmp_path, jobs=0)


class TestParallelParity:
    def test_pool_store_matches_serial_store(self, tmp_path):
        spec = make_spec(steps=200)
        serial_root = tmp_path / "serial"
        pool_root = tmp_path / "pool"
        run_campaign(spec, serial_root, jobs=1)
        result = run_campaign(spec, pool_root, jobs=2)
        assert result.count("solved") == 2
        assert_stores_identical(spec, serial_root, pool_root)

    def test_pool_telemetry_merges_worker_snapshots(self, tmp_path):
        spec = make_spec(steps=200)
        registry = TelemetryRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        run_campaign(spec, tmp_path, telemetry=registry, jobs=2)
        names = {e["name"] for e in sink.events if e.get("kind") == "event"}
        assert "campaign.point" in names
        assert "campaign.done" in names


class TestRetriesAndFailures:
    def test_transient_crash_is_retried(self, tmp_path, monkeypatch):
        spec = make_spec(seeds=(0,), retries=2, backoff_s=0)
        real = executor_mod._solve_point
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_mod, "_solve_point", flaky)
        result = run_campaign(spec, tmp_path)
        (outcome,) = result.outcomes
        assert outcome.status == "solved"
        assert outcome.attempts == 2
        assert not CampaignStore(tmp_path, spec.name).has_failure(outcome.digest)

    def test_persistent_crash_isolates_the_point(self, tmp_path, monkeypatch):
        spec = make_spec(retries=1, backoff_s=0)
        real = executor_mod._solve_point

        def crash_seed_zero(store, digest, point, *args, **kwargs):
            if point["seed"] == 0:
                raise RuntimeError("kaboom")
            return real(store, digest, point, *args, **kwargs)

        monkeypatch.setattr(executor_mod, "_solve_point", crash_seed_zero)
        result = run_campaign(spec, tmp_path)
        assert result.count("failed") == 1
        assert result.count("solved") == 1  # the crash did not kill the pass
        (failed,) = [o for o in result.outcomes if o.status == "failed"]
        assert failed.attempts == 2  # first try + one retry
        assert "kaboom" in failed.error
        record = CampaignStore(tmp_path, spec.name).load_failure(failed.digest)
        assert record["kind"] == "error"
        assert "kaboom" in record["traceback"]

    def test_failed_point_is_retried_on_the_next_pass(self, tmp_path, monkeypatch):
        spec = make_spec(seeds=(0,), retries=0, backoff_s=0)
        monkeypatch.setattr(
            executor_mod, "_solve_point",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("kaboom")),
        )
        run_campaign(spec, tmp_path)
        store = CampaignStore(tmp_path, spec.name)
        digest = spec.digests()[0]
        assert store.point_state(digest) == "failed"

        monkeypatch.undo()
        result = run_campaign(spec, tmp_path)
        assert result.count("solved") == 1
        assert store.point_state(digest) == "solved"
        assert not store.has_failure(digest)

    def test_backoff_grows_exponentially(self, tmp_path, monkeypatch):
        spec = make_spec(seeds=(0,), retries=2, backoff_s=0.5)
        sleeps: list[float] = []
        monkeypatch.setattr(executor_mod.time, "sleep", sleeps.append)
        monkeypatch.setattr(
            executor_mod, "_solve_point",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("kaboom")),
        )
        result = run_campaign(spec, tmp_path)
        assert result.count("failed") == 1
        assert sleeps == [0.5, 1.0]


class TestTimeouts:
    POINT = {"n": 24, "r": 6, "seed": 0, "steps": 300, "restarts": 2}

    def test_timeout_fails_fast_but_keeps_the_checkpoint(self, tmp_path):
        from repro.campaign.spec import normalize_point

        point = normalize_point(self.POINT)
        digest = point_digest(point)
        store = CampaignStore(tmp_path, "unit")
        cfg = ExecutorConfig(checkpoint_every=100, timeout_s=1e-9, retries=3)
        outcome = _execute_point(store, point, cfg, None)
        assert outcome.status == "failed"
        assert outcome.attempts == 1  # timeouts are never retried
        assert "timeout" in outcome.error
        assert store.load_failure(digest)["kind"] == "timeout"
        assert store.has_checkpoint(digest)

        # A resume with a real budget continues from the checkpoint and
        # lands on the uninterrupted answer exactly.
        ref_store = CampaignStore(tmp_path / "ref", "unit")
        reference = _execute_point(
            ref_store, point, ExecutorConfig(checkpoint_every=100), None
        )
        resumed = _execute_point(
            store, point, ExecutorConfig(checkpoint_every=100), None
        )
        assert resumed.status == "solved"
        assert resumed.h_aspl == reference.h_aspl
        assert store.result_graph_digest(digest) == ref_store.result_graph_digest(
            digest
        )
        assert not store.has_failure(digest)


class TestReportViews:
    def test_status_and_report_render_partial_campaigns(self, tmp_path):
        spec = make_spec()
        run_campaign(spec, tmp_path, stop_after_checkpoints=3)
        rows = campaign_status(spec, tmp_path)
        assert [r["state"] for r in rows].count("solved") <= 1
        status_text = format_status(spec, tmp_path)
        assert spec.name in status_text
        report_text = format_report(spec, tmp_path)
        assert "points solved" in report_text

        run_campaign(spec, tmp_path)
        rows = campaign_status(spec, tmp_path)
        assert all(r["state"] == "solved" for r in rows)
        assert "2/2 points solved" in format_report(spec, tmp_path)
