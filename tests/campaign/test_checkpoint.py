"""Bit-identical kill/resume: annealer checkpoints and the point checkpointer.

Determinism contract: a resumed run must match the uninterrupted one on the
graph, h-ASPL, and every accounting field.  ``wall_time_s`` is wall-clock
and therefore excluded from all identity assertions.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.campaign.checkpoint import CampaignInterrupted, PointCheckpointer
from repro.campaign.spec import normalize_point, point_digest
from repro.campaign.store import CampaignStore
from repro.core.annealing import (
    ANNEAL_CHECKPOINT_FORMAT,
    AnnealingSchedule,
    anneal,
)
from repro.core.construct import random_host_switch_graph
from repro.core.solver import solve_orp

SCHEDULE = AnnealingSchedule(num_steps=400)
SEED = 7


@pytest.fixture(scope="module")
def start_graph():
    return random_host_switch_graph(24, 8, 6, seed=3)


def strip_wall(record) -> dict:
    data = asdict(record)
    data.pop("wall_time_s")
    data.pop("graph", None)
    return data


class _StopAfter(Exception):
    pass


def run_killed_then_resumed(graph, kill_at: int, *, evaluator="incremental"):
    """Anneal, abort at the ``kill_at``-th checkpoint, resume, return result."""
    saved: list[dict] = []

    def callback(state: dict) -> None:
        saved.append(state)
        if len(saved) >= kill_at:
            raise _StopAfter()

    with pytest.raises(_StopAfter):
        anneal(
            graph, schedule=SCHEDULE, seed=SEED, history_every=50,
            evaluator=evaluator, checkpoint_every=100,
            checkpoint_callback=callback,
        )
    # The checkpoint must survive a JSON round trip (that is how the store
    # persists it across the kill).
    state = json.loads(json.dumps(saved[-1]))
    assert state["format"] == ANNEAL_CHECKPOINT_FORMAT
    assert state["step"] == kill_at * 100
    return anneal(
        graph, schedule=SCHEDULE, seed=SEED, history_every=50,
        evaluator=evaluator, resume_state=state,
    )


class TestAnnealResume:
    @pytest.fixture(scope="class")
    def reference(self, start_graph):
        return anneal(start_graph, schedule=SCHEDULE, seed=SEED, history_every=50)

    @pytest.mark.parametrize("kill_at", [1, 3])
    def test_resume_is_bit_identical(self, start_graph, reference, kill_at):
        resumed = run_killed_then_resumed(start_graph, kill_at)
        assert resumed.graph == reference.graph
        assert resumed.h_aspl == reference.h_aspl
        assert resumed.history == reference.history
        assert strip_wall(resumed) == strip_wall(reference)

    def test_resume_under_full_evaluator(self, start_graph, reference):
        resumed = run_killed_then_resumed(start_graph, 2, evaluator="full")
        assert resumed.graph == reference.graph
        assert strip_wall(resumed) == strip_wall(reference)

    def test_wall_time_accumulates_across_segments(self, start_graph):
        resumed = run_killed_then_resumed(start_graph, 2)
        assert resumed.wall_time_s > 0

    def test_checkpoint_callback_receives_every_boundary(self, start_graph):
        saved: list[int] = []
        anneal(
            start_graph, schedule=SCHEDULE, seed=SEED, checkpoint_every=100,
            checkpoint_callback=lambda s: saved.append(s["step"]),
        )
        assert saved == [100, 200, 300, 400]

    def test_no_callback_means_no_checkpoint_overhead_path(self, start_graph):
        # checkpoint_every without a callback is simply inert.
        result = anneal(start_graph, schedule=SCHEDULE, seed=SEED,
                        checkpoint_every=100)
        plain = anneal(start_graph, schedule=SCHEDULE, seed=SEED)
        assert result.graph == plain.graph
        assert strip_wall(result) == strip_wall(plain)


class TestResumeValidation:
    def checkpoint(self, start_graph) -> dict:
        saved: list[dict] = []
        anneal(
            start_graph, schedule=SCHEDULE, seed=SEED, checkpoint_every=200,
            checkpoint_callback=lambda s: saved.append(s),
        )
        return saved[0]

    def test_wrong_format_tag(self, start_graph):
        state = dict(self.checkpoint(start_graph), format="not-a-checkpoint")
        with pytest.raises(ValueError, match="format"):
            anneal(start_graph, schedule=SCHEDULE, seed=SEED, resume_state=state)

    def test_wrong_operation(self, start_graph):
        state = self.checkpoint(start_graph)
        with pytest.raises(ValueError, match="operation"):
            anneal(start_graph, schedule=SCHEDULE, seed=SEED,
                   operation="swap", resume_state=state)

    def test_wrong_schedule_length(self, start_graph):
        state = self.checkpoint(start_graph)
        with pytest.raises(ValueError, match="num_steps"):
            anneal(start_graph, schedule=AnnealingSchedule(num_steps=999),
                   seed=SEED, resume_state=state)

    def test_negative_checkpoint_every_rejected(self, start_graph):
        with pytest.raises(ValueError, match="checkpoint_every"):
            anneal(start_graph, schedule=SCHEDULE, seed=SEED,
                   checkpoint_every=-1)

    def test_sampled_evaluator_cannot_checkpoint(self, start_graph):
        with pytest.raises(ValueError, match="eval_sources"):
            anneal(start_graph, schedule=SCHEDULE, seed=SEED, eval_sources=4,
                   checkpoint_every=100, checkpoint_callback=lambda s: None)


POINT = normalize_point({"n": 24, "r": 6, "steps": 300, "restarts": 3})
DIGEST = point_digest(POINT)


def solve_point(checkpointer=None):
    return solve_orp(
        POINT["n"], POINT["r"],
        schedule=AnnealingSchedule(num_steps=POINT["steps"]),
        restarts=POINT["restarts"], seed=POINT["seed"],
        checkpointer=checkpointer,
    )


class TestPointCheckpointer:
    def test_interrupt_and_resume_across_restarts(self, tmp_path):
        reference = solve_point()
        store = CampaignStore(tmp_path, "unit")

        # Kill at the 5th checkpoint: restart 0 (3 checkpoints at
        # steps 100/200/300) completes, restart 1 dies mid-flight.
        ticks = [0]

        def hook() -> None:
            ticks[0] += 1
            if ticks[0] >= 5:
                raise CampaignInterrupted("drain")

        cp = PointCheckpointer(store, DIGEST, 100, on_checkpoint=hook)
        with pytest.raises(CampaignInterrupted):
            solve_point(cp)
        assert store.has_checkpoint(DIGEST)

        # Resume with a fresh checkpointer read back from the store.
        cp2 = PointCheckpointer(store, DIGEST, 100)
        assert cp2.completed_restarts == [0]
        assert cp2.resume_state(1) is not None
        assert cp2.resume_state(2) is None
        resumed = solve_point(cp2)

        assert resumed.graph == reference.graph
        assert resumed.h_aspl == reference.h_aspl
        assert [strip_wall(s) for s in resumed.restarts] == [
            strip_wall(s) for s in reference.restarts
        ]
        assert strip_wall(resumed.annealing) == strip_wall(reference.annealing)

    def test_completed_restarts_served_without_reannealing(self, tmp_path):
        store = CampaignStore(tmp_path, "unit")
        cp = PointCheckpointer(store, DIGEST, 100)
        solve_point(cp)
        # All restarts completed: a re-solve touches only the cache.
        cp2 = PointCheckpointer(store, DIGEST, 100)
        assert cp2.completed_restarts == [0, 1, 2]
        calls = {"saved": 0}
        cp2._on_checkpoint = lambda: calls.__setitem__("saved", calls["saved"] + 1)
        again = solve_point(cp2)
        assert calls["saved"] == 0  # zero annealer checkpoints => zero work
        assert again.h_aspl == solve_point().h_aspl

    def test_checkpointer_requires_serial_jobs(self, tmp_path):
        cp = PointCheckpointer(CampaignStore(tmp_path, "unit"), DIGEST, 100)
        with pytest.raises(ValueError, match="jobs=1"):
            solve_orp(
                POINT["n"], POINT["r"],
                schedule=AnnealingSchedule(num_steps=100),
                restarts=2, jobs=2, seed=0, checkpointer=cp,
            )

    def test_bad_checkpoint_every(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            PointCheckpointer(CampaignStore(tmp_path, "unit"), DIGEST, 0)

    def test_unsupported_persisted_format(self, tmp_path):
        store = CampaignStore(tmp_path, "unit")
        store.save_checkpoint(DIGEST, {"format": "someone-else/v9"})
        with pytest.raises(ValueError, match="unsupported format"):
            PointCheckpointer(store, DIGEST, 100)
