"""Tests for the content-addressed campaign store."""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import load_spec, normalize_point, point_digest
from repro.campaign.store import CampaignStore, StoreError
from repro.core.annealing import AnnealingSchedule
from repro.core.solver import solve_orp

POINT = normalize_point({"n": 24, "r": 6, "steps": 200, "restarts": 2})
DIGEST = point_digest(POINT)


@pytest.fixture(scope="module")
def solution():
    return solve_orp(
        POINT["n"], POINT["r"],
        schedule=AnnealingSchedule(num_steps=POINT["steps"]),
        restarts=POINT["restarts"], seed=POINT["seed"],
    )


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path, "unit")


class TestResults:
    def test_result_round_trip(self, store, solution):
        assert not store.has_result(DIGEST)
        assert store.point_state(DIGEST) == "pending"
        store.save_result(DIGEST, POINT, solution)
        assert store.has_result(DIGEST)
        assert store.point_state(DIGEST) == "solved"
        back = store.load_result(DIGEST)
        assert back.graph == solution.graph
        assert back.h_aspl == solution.h_aspl
        assert back.diameter == solution.diameter
        assert len(back.restarts) == len(solution.restarts)
        assert store.load_point(DIGEST) == POINT

    def test_graph_digest_matches_artifact(self, store, solution):
        store.save_result(DIGEST, POINT, solution)
        import hashlib

        expected = hashlib.sha256(store.graph_path(DIGEST).read_bytes()).hexdigest()
        assert store.result_graph_digest(DIGEST) == expected

    def test_save_result_clears_checkpoint_and_failure(self, store, solution):
        store.save_checkpoint(DIGEST, {"format": "x", "completed": {}, "active": {}})
        store.save_failure(DIGEST, {"kind": "error"})
        store.save_result(DIGEST, POINT, solution)
        assert not store.has_checkpoint(DIGEST)
        assert not store.has_failure(DIGEST)
        assert store.point_state(DIGEST) == "solved"

    def test_no_temp_files_left_behind(self, store, solution):
        store.save_result(DIGEST, POINT, solution)
        leftovers = list(store.dir.rglob("*.tmp"))
        assert leftovers == []

    def test_corrupt_result_raises_store_error(self, store, solution):
        store.save_result(DIGEST, POINT, solution)
        (store.point_dir(DIGEST) / "result.json").write_text("{ torn")
        with pytest.raises(StoreError, match="cannot read"):
            store.load_result(DIGEST)


class TestCheckpointsAndFailures:
    def test_checkpoint_round_trip(self, store):
        assert store.load_checkpoint(DIGEST) is None
        state = {"format": "repro.campaign.checkpoint/v1",
                 "completed": {"0": {"x": 1}}, "active": {}}
        store.save_checkpoint(DIGEST, state)
        assert store.point_state(DIGEST) == "checkpointed"
        assert store.load_checkpoint(DIGEST) == state
        store.clear_checkpoint(DIGEST)
        assert store.load_checkpoint(DIGEST) is None
        store.clear_checkpoint(DIGEST)  # idempotent

    def test_failure_round_trip(self, store):
        record = {"kind": "timeout", "error": "too slow"}
        store.save_failure(DIGEST, record)
        assert store.point_state(DIGEST) == "failed"
        assert store.load_failure(DIGEST) == record
        store.clear_failure(DIGEST)
        assert not store.has_failure(DIGEST)

    def test_failure_outranks_checkpoint_in_state(self, store):
        store.save_checkpoint(DIGEST, {"format": "x"})
        store.save_failure(DIGEST, {"kind": "error"})
        assert store.point_state(DIGEST) == "failed"


class TestSpecBinding:
    DOC = {"name": "unit", "grid": {"n": [24], "r": [6]},
           "defaults": {"steps": 100}}

    def test_save_and_load_spec(self, store):
        spec = load_spec(self.DOC)
        store.save_spec(spec)
        assert store.load_spec().digests() == spec.digests()
        store.save_spec(spec)  # identical resubmission is a no-op

    def test_conflicting_spec_rejected(self, store):
        store.save_spec(load_spec(self.DOC))
        other = dict(self.DOC, defaults={"steps": 999})
        with pytest.raises(StoreError, match="different spec"):
            store.save_spec(load_spec(other))

    def test_key_order_is_not_a_conflict(self, store):
        store.save_spec(load_spec(self.DOC))
        reordered = json.loads(json.dumps(
            {"defaults": self.DOC["defaults"], "grid": self.DOC["grid"],
             "name": self.DOC["name"]}
        ))
        store.save_spec(load_spec(reordered))  # canonical compare: no error

    def test_load_missing_spec(self, store):
        with pytest.raises(StoreError, match="no campaign"):
            store.load_spec()


class TestDigestListing:
    def test_digests_sorted(self, store, solution):
        assert store.digests() == []
        other_point = normalize_point({"n": 24, "r": 6, "steps": 200,
                                       "restarts": 2, "seed": 1})
        other = point_digest(other_point)
        store.save_result(DIGEST, POINT, solution)
        store.save_checkpoint(other, {"format": "x"})
        assert store.digests() == sorted([DIGEST, other])
