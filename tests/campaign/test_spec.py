"""Tests for campaign spec validation, grid expansion, and point digests."""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import (
    CAMPAIGN_SPEC_FORMAT,
    POINT_FIELDS,
    ExecutorConfig,
    SpecError,
    canonical_json,
    expand_grid,
    load_spec,
    normalize_point,
    point_digest,
)


class TestNormalizePoint:
    def test_defaults_made_explicit(self):
        out = normalize_point({"n": 64, "r": 8})
        assert out == {
            "n": 64,
            "r": 8,
            "m": None,
            "steps": 20_000,
            "restarts": 1,
            "seed": 0,
            "operation": "two-neighbor-swing",
            "construction": "random",
            "initial_temperature": 0.05,
            "final_temperature": 1e-4,
            "backend": None,
        }

    def test_explicit_defaults_digest_identically(self):
        implicit = normalize_point({"n": 64, "r": 8})
        explicit = normalize_point(
            {"n": 64, "r": 8, "steps": 20_000, "seed": 0, "restarts": 1}
        )
        assert point_digest(implicit) == point_digest(explicit)

    def test_missing_required_field(self):
        with pytest.raises(SpecError, match="required field 'r'"):
            normalize_point({"n": 64})

    def test_unknown_field(self):
        with pytest.raises(SpecError, match="unknown point field"):
            normalize_point({"n": 64, "r": 8, "temperature": 1.0})

    def test_wrong_type(self):
        with pytest.raises(SpecError, match="'steps' must be"):
            normalize_point({"n": 64, "r": 8, "steps": "many"})

    def test_bool_is_not_int(self):
        with pytest.raises(SpecError, match="'seed' must be"):
            normalize_point({"n": 64, "r": 8, "seed": True})

    def test_out_of_range(self):
        with pytest.raises(SpecError, match="'n' must be >= 1"):
            normalize_point({"n": 0, "r": 8})
        with pytest.raises(SpecError, match="'m' must be >= 1"):
            normalize_point({"n": 64, "r": 8, "m": 0})

    def test_bad_operation_and_construction(self):
        with pytest.raises(SpecError, match="operation"):
            normalize_point({"n": 64, "r": 8, "operation": "shuffle"})
        with pytest.raises(SpecError, match="construction"):
            normalize_point({"n": 64, "r": 8, "construction": "clever"})

    def test_bad_temperature_ordering(self):
        with pytest.raises(SpecError, match="final_temperature"):
            normalize_point(
                {"n": 64, "r": 8, "initial_temperature": 0.01,
                 "final_temperature": 0.1}
            )

    def test_int_temperatures_coerced_to_float(self):
        out = normalize_point(
            {"n": 64, "r": 8, "initial_temperature": 1, "final_temperature": 1}
        )
        assert isinstance(out["initial_temperature"], float)
        assert isinstance(out["final_temperature"], float)

    def test_int_temperature_digests_like_float(self):
        a = point_digest({"n": 64, "r": 8, "initial_temperature": 1,
                          "final_temperature": 1})
        b = point_digest({"n": 64, "r": 8, "initial_temperature": 1.0,
                          "final_temperature": 1.0})
        assert a == b


class TestPointDigest:
    def test_key_order_does_not_matter(self):
        a = point_digest({"n": 64, "r": 8, "seed": 3})
        b = point_digest({"seed": 3, "r": 8, "n": 64})
        assert a == b

    def test_value_change_changes_digest(self):
        base = point_digest({"n": 64, "r": 8})
        for override in ({"seed": 1}, {"steps": 100}, {"m": 12},
                         {"operation": "swap"}):
            assert point_digest({"n": 64, "r": 8, **override}) != base

    def test_digest_is_stable_across_processes(self):
        # A golden value: the digest is content, not an id() — changing it
        # silently orphans every existing store.
        assert point_digest({"n": 64, "r": 8}) == (
            point_digest(dict(normalize_point({"n": 64, "r": 8})))
        )
        assert len(point_digest({"n": 64, "r": 8})) == 64

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestExpandGrid:
    def test_cartesian_product_in_sorted_axis_order(self):
        points = expand_grid({"seed": [0, 1], "r": [8, 12]}, {"n": 64})
        # Axes sorted: r before seed; values in listed order.
        combos = [(p["r"], p["seed"]) for p in points]
        assert combos == [(8, 0), (8, 1), (12, 0), (12, 1)]

    def test_scalar_axis_means_single_value(self):
        points = expand_grid({"n": 64, "r": [8, 12]})
        assert [p["n"] for p in points] == [64, 64]

    def test_points_are_normalized(self):
        (point,) = expand_grid({"n": [64], "r": [8]})
        assert set(point) == set(POINT_FIELDS)

    def test_grid_defaults_overlap_rejected(self):
        with pytest.raises(SpecError, match="both grid and defaults"):
            expand_grid({"n": [64], "r": [8]}, {"n": 128})

    def test_duplicate_points_rejected(self):
        with pytest.raises(SpecError, match="duplicate point"):
            expand_grid({"n": [64, 64], "r": [8]})

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError, match="axis 'seed' is empty"):
            expand_grid({"n": [64], "r": [8], "seed": []})

    def test_empty_grid_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            expand_grid({})


class TestLoadSpec:
    def spec_doc(self, **overrides):
        doc = {
            "name": "unit-spec",
            "grid": {"n": [32], "r": [6], "seed": [0, 1]},
            "defaults": {"steps": 500},
        }
        doc.update(overrides)
        return doc

    def test_valid_spec(self):
        spec = load_spec(self.spec_doc())
        assert spec.name == "unit-spec"
        assert len(spec.points) == 2
        assert len(spec.digests()) == 2
        assert spec.executor == ExecutorConfig()
        assert spec.raw["grid"] == {"n": [32], "r": [6], "seed": [0, 1]}

    def test_spec_round_trips_through_json(self):
        doc = json.loads(json.dumps(self.spec_doc()))
        assert load_spec(doc).digests() == load_spec(self.spec_doc()).digests()

    def test_explicit_format_accepted(self):
        assert load_spec(self.spec_doc(format=CAMPAIGN_SPEC_FORMAT)).name == "unit-spec"

    def test_unknown_format_rejected(self):
        with pytest.raises(SpecError, match="unsupported spec format"):
            load_spec(self.spec_doc(format="repro.campaign.spec/v99"))

    def test_non_dict_rejected(self):
        with pytest.raises(SpecError, match="JSON object"):
            load_spec(["not", "a", "spec"])

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            load_spec(self.spec_doc(points=[{"n": 1}]))

    @pytest.mark.parametrize("name", [None, "", "with space", "/abs", ".dot", 7])
    def test_bad_names_rejected(self, name):
        with pytest.raises(SpecError, match="name"):
            load_spec(self.spec_doc(name=name))

    def test_executor_parsed(self):
        spec = load_spec(
            self.spec_doc(
                executor={"jobs": 3, "checkpoint_every": 50, "timeout_s": 10,
                          "retries": 2, "backoff_s": 0.5}
            )
        )
        assert spec.executor == ExecutorConfig(
            jobs=3, checkpoint_every=50, timeout_s=10, retries=2, backoff_s=0.5
        )

    def test_unknown_executor_field_rejected(self):
        with pytest.raises(SpecError, match="unknown executor field"):
            load_spec(self.spec_doc(executor={"workers": 4}))

    def test_executor_type_check(self):
        with pytest.raises(SpecError, match="executor field 'jobs'"):
            load_spec(self.spec_doc(executor={"jobs": "all"}))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"checkpoint_every": 0},
            {"timeout_s": 0},
            {"retries": -1},
            {"backoff_s": -0.1},
        ],
    )
    def test_executor_range_check(self, kwargs):
        with pytest.raises(SpecError):
            ExecutorConfig(**kwargs)
