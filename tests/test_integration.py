"""Cross-module integration tests: the paper's pipelines end to end.

These run miniature versions of the paper's experiments through the full
stack — ORP solve -> routing -> simulation / partitioning / layout — and
check the qualitative claims that are robust at small scale.
"""

from __future__ import annotations

import pytest

from repro import AnnealingSchedule, h_aspl, h_aspl_and_diameter, solve_orp
from repro.analysis import host_distribution_summary
from repro.layout import Floorplan, network_cost, network_power
from repro.partition import WeightedGraph, partition_balance, partition_host_switch
from repro.routing import RoutingTables, host_path
from repro.simulation.apps import run_nas
from repro.simulation.mapping import rank_to_host_mapping
from repro.topologies import dragonfly, fat_tree, torus


@pytest.fixture(scope="module")
def solution():
    """One shared small ORP solve (n=64, r=10)."""
    return solve_orp(64, 10, schedule=AnnealingSchedule(num_steps=1_500), seed=17)


class TestProposedVsConventional:
    def test_lower_h_aspl_than_torus_at_same_radix(self, solution):
        conv, _ = torus(3, 3, 10, num_hosts=64)
        assert solution.h_aspl < h_aspl(conv)

    def test_lower_h_aspl_than_fat_tree_at_same_radix(self):
        conv, spec = fat_tree(8)
        sol = solve_orp(
            spec.max_hosts, spec.radix,
            schedule=AnnealingSchedule(num_steps=1_500), seed=17,
        )
        assert sol.h_aspl < h_aspl(conv)

    def test_fewer_switches_than_conventional(self, solution):
        _, torus_spec_ = torus(3, 3, 10, num_hosts=64)
        assert solution.m < torus_spec_.num_switches

    def test_non_regular_host_distribution(self, solution):
        # The paper's qualitative finding: neither direct nor indirect.
        summary = host_distribution_summary(solution.graph)
        assert summary.max_hosts >= 1


class TestRoutingOverSolvedGraph:
    def test_routes_match_metric_distances(self, solution):
        graph = solution.graph
        tables = RoutingTables(graph)
        from repro.core.metrics import host_distance_matrix

        dist = host_distance_matrix(graph)
        for src in range(0, graph.num_hosts, 13):
            for dst in range(0, graph.num_hosts, 17):
                if src == dst:
                    continue
                path = host_path(tables, src, dst)
                assert len(path) - 1 == dist[src, dst]

    def test_mean_route_length_equals_h_aspl(self, solution):
        graph = solution.graph
        tables = RoutingTables(graph)
        n = graph.num_hosts
        total = 0
        count = 0
        for src in range(n):
            for dst in range(src + 1, n):
                total += len(host_path(tables, src, dst)) - 1
                count += 1
        assert total / count == pytest.approx(solution.h_aspl)


class TestSimulationOverSolvedGraph:
    def test_nas_runs_on_solved_topology(self, solution):
        mapping = rank_to_host_mapping(solution.graph, 16, "dfs")
        res = run_nas(
            "mg", solution.graph, 16, nas_class="A", iterations=1,
            rank_to_host=mapping,
        )
        assert res.time_s > 0

    def test_lower_h_aspl_helps_latency_bound_traffic(self, solution):
        """Contention-free latency model: proposed beats fat-tree on a
        latency-dominated benchmark (pure path-length effect)."""
        conv, _ = fat_tree(8)
        sol = solve_orp(
            128, 8, schedule=AnnealingSchedule(num_steps=1_500), seed=17
        )
        r_conv = run_nas("lu", conv, 16, nas_class="A", iterations=1, model="latency",
                         rank_to_host=rank_to_host_mapping(conv, 16, "linear"))
        r_prop = run_nas("lu", sol.graph, 16, nas_class="A", iterations=1,
                         model="latency",
                         rank_to_host=rank_to_host_mapping(sol.graph, 16, "dfs"))
        # Messages traverse strictly fewer hops on average.
        assert r_prop.time_s <= r_conv.time_s * 1.05


class TestPartitionOverSolvedGraph:
    def test_bisection_balanced_and_positive(self, solution):
        parts, cut = partition_host_switch(solution.graph, 2, seed=0, trials=2)
        wg = WeightedGraph.from_host_switch(solution.graph)
        assert cut > 0
        assert partition_balance(wg, parts, 2) <= 1.1

    def test_fat_tree_bisection_beats_proposed(self):
        """The paper's Fig. 11b inversion at reduced scale."""
        conv, _ = fat_tree(8)
        sol = solve_orp(
            128, 8, schedule=AnnealingSchedule(num_steps=1_500), seed=17
        )
        _, cut_conv = partition_host_switch(conv, 2, seed=0, trials=2)
        _, cut_prop = partition_host_switch(sol.graph, 2, seed=0, trials=2)
        assert cut_conv > cut_prop


class TestLayoutOverSolvedGraph:
    def test_power_and_cost_computable(self, solution):
        plan = Floorplan(solution.graph)
        power = network_power(solution.graph, plan)
        cost = network_cost(solution.graph, plan)
        assert power.total_w > 0
        assert cost.total_usd > 0

    def test_fewer_switches_means_lower_switch_power(self, solution):
        conv, _ = torus(3, 3, 10, num_hosts=64)
        p_conv = network_power(conv, Floorplan(conv))
        p_prop = network_power(solution.graph, Floorplan(solution.graph))
        assert p_prop.switches_w < p_conv.switches_w


class TestSerializationRoundTripThroughStack:
    def test_saved_graph_reproduces_all_metrics(self, solution, tmp_path):
        from repro import load_graph, save_graph

        path = tmp_path / "solved.hsg"
        save_graph(solution.graph, path)
        back = load_graph(path)
        assert h_aspl_and_diameter(back) == h_aspl_and_diameter(solution.graph)
        _, cut1 = partition_host_switch(solution.graph, 2, seed=5, trials=1)
        _, cut2 = partition_host_switch(back, 2, seed=5, trials=1)
        assert cut1 == cut2
