"""Tests for shared utilities (rng, union-find, validation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    UnionFind,
    as_generator,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    spawn_generators,
)


class TestRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(7).integers(0, 1000, size=5)
        b = as_generator(7).integers(0, 1000, size=5)
        assert (a == b).all()

    def test_generator_passthrough_shares_state(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_spawn_generators_independent(self):
        children = spawn_generators(3, 4)
        assert len(children) == 4
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) > 1

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.components == 5
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.union(1, 0)  # already joined
        assert uf.components == 4

    def test_component_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(2) == 3
        assert uf.component_size(5) == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    def test_matches_naive_partition(self, pairs):
        uf = UnionFind(20)
        groups = [{i} for i in range(20)]
        index = list(range(20))
        for a, b in pairs:
            uf.union(a, b)
            ga, gb = index[a], index[b]
            if ga != gb:
                groups[ga] |= groups[gb]
                for v in groups[gb]:
                    index[v] = ga
                groups[gb] = set()
        for a in range(20):
            for b in range(a + 1, 20):
                assert uf.connected(a, b) == (index[a] == index[b])


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(TypeError):
            check_positive_int(3.0, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")
