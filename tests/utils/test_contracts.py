"""Tests for the runtime contract layer (:mod:`repro.utils.contracts`)."""

from __future__ import annotations

import pytest

from repro.core.hostswitch import HostSwitchGraph
from repro.utils.contracts import (
    ContractViolation,
    contracts_enabled,
    contracts_level,
    ensures,
    requires,
    set_contracts,
)


@pytest.fixture(autouse=True)
def _restore_level():
    yield
    set_contracts(None)


# --------------------------------------------------------------------- #
# Level plumbing
# --------------------------------------------------------------------- #


def test_default_level_is_on(monkeypatch):
    monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
    set_contracts(None)
    assert contracts_level() == "on"
    assert contracts_enabled()


@pytest.mark.parametrize("raw", ["0", "false", "off", "no", " OFF "])
def test_env_disables(monkeypatch, raw):
    monkeypatch.setenv("REPRO_CONTRACTS", raw)
    set_contracts(None)
    assert contracts_level() == "off"
    assert not contracts_enabled()


@pytest.mark.parametrize("raw", ["full", "2", "all"])
def test_env_full(monkeypatch, raw):
    monkeypatch.setenv("REPRO_CONTRACTS", raw)
    set_contracts(None)
    assert contracts_level() == "full"


def test_set_contracts_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    set_contracts("full")
    assert contracts_level() == "full"
    set_contracts(None)
    assert contracts_level() == "off"


def test_set_contracts_accepts_bool():
    set_contracts(False)
    assert contracts_level() == "off"
    set_contracts(True)
    assert contracts_level() == "on"


def test_set_contracts_rejects_junk():
    with pytest.raises(ValueError, match="level must be"):
        set_contracts("loud")


# --------------------------------------------------------------------- #
# requires / ensures
# --------------------------------------------------------------------- #


@requires(lambda x: x >= 0, "x must be non-negative")
def _sqrtish(x: float) -> float:
    return x**0.5


@ensures(lambda r: r >= 0, "result must be non-negative")
def _identity(x: float) -> float:
    return x


def test_requires_passes_and_fails():
    set_contracts("on")
    assert _sqrtish(4.0) == pytest.approx(2.0)
    with pytest.raises(ContractViolation, match="non-negative"):
        _sqrtish(-1.0)


def test_requires_disabled_skips_check():
    set_contracts("off")
    # Predicate not enforced: the call proceeds (and returns a complex root).
    assert _sqrtish(-1.0) == (-1.0) ** 0.5


def test_ensures_passes_and_fails():
    set_contracts("on")
    assert _identity(3.0) == 3.0
    with pytest.raises(ContractViolation, match="postcondition"):
        _identity(-3.0)


def test_ensures_disabled_skips_check():
    set_contracts("off")
    assert _identity(-3.0) == -3.0


def test_contract_violation_is_assertion_error():
    assert issubclass(ContractViolation, AssertionError)


# --------------------------------------------------------------------- #
# graph_invariant on the real mutation methods
# --------------------------------------------------------------------- #


def _corrupted_graph() -> HostSwitchGraph:
    """Graph whose host counter is broken behind the public guards' back."""
    g = HostSwitchGraph(num_switches=2, radix=3)
    g._hosts_per_switch[0] = -1
    return g


def test_mutations_clean_under_all_levels():
    for level in ("off", "on", "full"):
        set_contracts(level)
        g = HostSwitchGraph(num_switches=3, radix=4)
        g.add_switch_edge(0, 1)
        g.add_switch_edge(1, 2)
        h = g.attach_host(0)
        g.move_host(h, 2)
        g.remove_switch_edge(0, 1)
        assert g.num_hosts == 1


def test_spot_check_catches_corruption_on_touched_switch():
    set_contracts("on")
    g = _corrupted_graph()
    with pytest.raises(ContractViolation, match="negative host count"):
        g.add_switch_edge(0, 1)


def test_full_level_runs_validate():
    set_contracts("full")
    g = _corrupted_graph()
    with pytest.raises(ContractViolation, match="desynchronised"):
        g.add_switch_edge(0, 1)


def test_off_level_skips_invariant_checks():
    set_contracts("off")
    g = _corrupted_graph()
    g.add_switch_edge(0, 1)  # no contract check, no raise
    assert g.has_switch_edge(0, 1)


def test_metrics_postcondition_holds_on_real_graph():
    from repro.core.construct import clique_host_switch_graph
    from repro.core.metrics import h_aspl_and_diameter

    set_contracts("on")
    aspl, diam = h_aspl_and_diameter(clique_host_switch_graph(8, 6))
    assert aspl >= 2.0
    assert diam >= aspl


def test_sampled_metric_precondition_rejects_empty_sources():
    import numpy as np

    from repro.core.construct import clique_host_switch_graph
    from repro.core.metrics import h_aspl_sampled

    set_contracts("on")
    g = clique_host_switch_graph(8, 6)
    with pytest.raises(ContractViolation, match="at least one sampled source"):
        h_aspl_sampled(g, np.array([], dtype=np.int64))
