#!/usr/bin/env python3
"""Design study: proposed ORP topology vs torus / dragonfly / fat-tree.

Recreates the paper's Section 6 comparison methodology at a configurable
scale: for a target host count, build the smallest conventional instance
of each family that can connect that many hosts, build the proposed
topology at the same radix, and compare switch counts, h-ASPL, diameter,
power, and cost.

Usage:
    python examples/design_cluster.py [n]          # default: 256
"""

from __future__ import annotations

import sys

from repro import AnnealingSchedule, h_aspl_and_diameter, solve_orp
from repro.analysis.report import format_table
from repro.layout import Floorplan, network_cost, network_power
from repro.topologies import dragonfly_spec, dragonfly, fat_tree, fat_tree_spec, torus


def smallest_torus(n: int):
    """Smallest 5-D-style torus (K chosen small) connecting n hosts."""
    for dimension in (3, 4, 5):
        for base in (3, 4, 5):
            for radix in range(2 * dimension + 1, 2 * dimension + 8):
                from repro.topologies import torus_spec

                try:
                    spec = torus_spec(dimension, base, radix)
                except ValueError:
                    continue
                if spec.max_hosts >= n:
                    return torus(dimension, base, radix, num_hosts=n)
    raise ValueError(f"no torus configuration found for n={n}")


def smallest_dragonfly(n: int):
    for a in range(4, 33, 2):
        if dragonfly_spec(a).max_hosts >= n:
            return dragonfly(a, num_hosts=n)
    raise ValueError(f"no dragonfly configuration found for n={n}")


def smallest_fat_tree(n: int):
    for k in range(4, 65, 2):
        if fat_tree_spec(k).max_hosts >= n:
            return fat_tree(k, num_hosts=n)
    raise ValueError(f"no fat-tree configuration found for n={n}")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256

    rows = []
    for name, (graph, spec) in [
        ("torus", smallest_torus(n)),
        ("dragonfly", smallest_dragonfly(n)),
        ("fat-tree", smallest_fat_tree(n)),
    ]:
        aspl, diam = h_aspl_and_diameter(graph)
        rows.append([name, spec.num_switches, spec.radix, aspl, diam,
                     network_power(graph, Floorplan(graph)).total_w,
                     network_cost(graph, Floorplan(graph)).total_usd])
        # The proposed topology at the same (n, r) — the paper's method.
        sol = solve_orp(
            n, spec.radix, schedule=AnnealingSchedule(num_steps=4_000), seed=7
        )
        rows.append(
            [f"proposed @r={spec.radix}", sol.m, spec.radix, sol.h_aspl,
             sol.diameter,
             network_power(sol.graph, Floorplan(sol.graph)).total_w,
             network_cost(sol.graph, Floorplan(sol.graph)).total_usd]
        )

    print(format_table(
        ["topology", "switches", "radix", "h-ASPL", "diameter", "power W", "cost $"],
        rows,
        title=f"Cluster design study for n = {n} hosts",
    ))
    print(
        "\nEach 'proposed' row solves the ORP at the conventional topology's"
        "\nradix — note the lower h-ASPL with (usually) fewer switches."
    )


if __name__ == "__main__":
    main()
