#!/usr/bin/env python3
"""Bandwidth evaluation by graph partitioning (the paper's Section 6.2.2).

Partitions the vertex set V = H ∪ S of several topologies into P = 2..16
equal subsets with the library's multilevel partitioner (its METIS
substitute) and reports the edge cut — the paper's "bandwidth" metric;
P = 2 gives the bisection bandwidth.

Usage:
    python examples/bandwidth_partitioning.py [n]  # default: 256
"""

from __future__ import annotations

import sys

from repro import AnnealingSchedule, solve_orp
from repro.analysis.report import format_table
from repro.partition import partition_host_switch
from repro.topologies import dragonfly, fat_tree, torus


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256

    torus_graph, torus_spec_ = torus(4, 3, 12, num_hosts=n)
    networks = {
        "torus(4,3)": torus_graph,
        "dragonfly(6)": dragonfly(6, num_hosts=n)[0],
        "fat-tree(12)": fat_tree(12, num_hosts=n)[0],
        # The paper's rule: m = m_opt (lean — minimises latency and cost).
        "proposed(m_opt)": solve_orp(
            n, 12, schedule=AnnealingSchedule(num_steps=3_000), seed=5
        ).graph,
        # Same switch budget as the torus: bandwidth at matched hardware.
        f"proposed(m={torus_spec_.num_switches})": solve_orp(
            n, 12, m=torus_spec_.num_switches,
            schedule=AnnealingSchedule(num_steps=3_000), seed=5,
        ).graph,
    }

    parts_range = [2, 4, 6, 8, 12, 16]
    rows = []
    for p in parts_range:
        row = [p]
        for graph in networks.values():
            _, cut = partition_host_switch(graph, p, seed=1, trials=2)
            row.append(cut)
        rows.append(row)

    print(format_table(
        ["P"] + list(networks),
        rows,
        title=f"Edge cut (bandwidth) vs number of partitions, n={n}",
    ))
    print(
        "\nReading the table: the cut counts links crossing a balanced split,"
        "\nso it scales with deployed hardware.  At m_opt the ORP graph is"
        "\ndeliberately lean (fewest switches for minimum latency), hence a"
        "\nsmall cut; at the torus's own switch budget the ORP graph matches"
        "\nor beats the torus's bandwidth — the paper's Fig. 9b regime, where"
        "\nn is close to network capacity.  The fat-tree, built for full"
        "\nbisection, tops the table yet loses on application performance"
        "\n(paper Fig. 11a)."
    )


if __name__ == "__main__":
    main()
