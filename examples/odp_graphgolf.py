#!/usr/bin/env python3
"""Order/Degree Problem (Graph Golf) solving with the ORP machinery.

The paper generalises the classic ODP — given vertices and degree, minimise
the plain ASPL — which the Graph Golf competition popularised.  This
example solves a few ODP instances, reports the gap to the Moore bound,
and shows the host-switch embedding identity the solver is built on
(h-ASPL = ASPL + 2 at one host per switch).

Usage:
    python examples/odp_graphgolf.py [n] [d]       # defaults: 32 4
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_table
from repro.core.annealing import AnnealingSchedule
from repro.core.odp import odp_aspl_lower_bound, solve_odp


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    d = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    print("Classic instances first — (10, 3) admits the Petersen graph,")
    print("which meets the Moore bound exactly:\n")

    rows = []
    for nv, deg in [(10, 3), (16, 4), (n, d)]:
        sol = solve_odp(
            nv, deg,
            schedule=AnnealingSchedule(num_steps=4_000), restarts=2, seed=1,
        )
        rows.append([nv, deg, sol.aspl, sol.aspl_lower_bound,
                     f"{100 * sol.gap:.2f}%", sol.diameter])
    print(format_table(
        ["n", "degree", "ASPL", "Moore bound", "gap", "diameter"],
        rows,
        title="ODP solutions (swap-operation simulated annealing)",
    ))

    sol = solve_odp(n, d, schedule=AnnealingSchedule(num_steps=4_000), seed=1)
    print(f"\n{sol.summary()}")
    print(
        f"Embedding identity check: annealer's h-ASPL "
        f"{sol.annealing.h_aspl:.4f} = ASPL {sol.aspl:.4f} + 2"
    )
    print(f"Edge list has {len(sol.edges)} edges; first five: {sol.edges[:5]}")


if __name__ == "__main__":
    main()
