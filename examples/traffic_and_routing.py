#!/usr/bin/env python3
"""Synthetic traffic and routing-policy study on an ORP topology.

Sweeps offered load under several traffic patterns, compares the three
routing policies (deterministic shortest, ECMP, Valiant), and prints the
distance profile and link-load balance — the interconnect-architect's view
of a solved Order/Radix Problem instance.

Usage:
    python examples/traffic_and_routing.py [n] [r]   # defaults: 64 10
"""

from __future__ import annotations

import sys

from repro import AnnealingSchedule, solve_orp
from repro.analysis import distance_profile, format_table, link_load_summary
from repro.simulation.engine import Kernel
from repro.simulation.network import FluidNetworkModel
from repro.simulation.traffic import run_traffic


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    r = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    sol = solve_orp(n, r, schedule=AnnealingSchedule(num_steps=3_000), seed=4)
    print(sol.summary(), "\n")

    profile = distance_profile(sol.graph)
    print(format_table(
        ["distance", "host pairs"],
        sorted(profile.histogram.items()),
        title=f"Host-to-host distance histogram (mean {profile.mean:.3f})",
    ))
    print(f"fraction of pairs within 3 hops: {profile.fraction_within(3):.1%}\n")

    import math

    patterns = ["uniform", "hotspot"]
    if math.isqrt(n) ** 2 == n:
        patterns.insert(1, "transpose")  # needs a square host count
    rows = []
    for pattern in patterns:
        for routing in ("shortest", "ecmp", "valiant"):
            res = run_traffic(
                sol.graph, pattern, messages_per_host=15, offered_load=0.6,
                routing=routing, seed=1,
            )
            rows.append([pattern, routing, res.mean_latency_s * 1e6,
                         res.p99_latency_s * 1e6])
    print(format_table(
        ["pattern", "routing", "mean us", "p99 us"],
        rows,
        title="Synthetic traffic at offered load 0.6",
    ))

    # Link-load balance under one uniform run (fluid model utilisation).
    kernel = Kernel()
    net = FluidNetworkModel(sol.graph, kernel)
    res = run_traffic(sol.graph, "uniform", messages_per_host=10, seed=2)
    # run_traffic builds its own network; reuse its idea via a short rerun:
    del net, kernel
    print(
        f"\nuniform run: {len(res.latencies_s)} messages, "
        f"aggregate throughput {res.throughput_bytes_per_s / 1e9:.2f} GB/s"
    )


if __name__ == "__main__":
    main()
