#!/usr/bin/env python3
"""Floorplan, power, and cost analysis of an interconnect (Section 6.2.3).

Places a network's switches into 60 cm x 210 cm cabinets on a 2-D grid,
measures Manhattan cable runs, classifies cables (electrical <= 100 cm,
optical beyond), and applies the FDR10-style power and cost models —
comparing the index-order placement against the DFS placement that keeps
topologically adjacent switches in nearby cabinets.

Usage:
    python examples/datacenter_cost.py [n]         # default: 512
"""

from __future__ import annotations

import sys

from repro import AnnealingSchedule, solve_orp
from repro.analysis.report import format_table
from repro.layout import (
    CableKind,
    Floorplan,
    enumerate_cables,
    network_cost,
    network_power,
)
from repro.topologies import torus


def describe(name: str, graph, plan: Floorplan) -> list:
    cables = enumerate_cables(graph, plan)
    optical = sum(1 for c in cables if c.kind is CableKind.OPTICAL)
    power = network_power(graph, plan)
    cost = network_cost(graph, plan)
    return [
        name,
        plan.num_cabinets,
        f"{plan.total_cable_length_m():.0f}",
        f"{optical}/{len(cables)}",
        f"{power.total_w:.0f}",
        f"{cost.switches_usd:.0f}",
        f"{cost.cables_usd:.0f}",
        f"{cost.total_usd:.0f}",
    ]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512

    torus_graph, spec = torus(4, 3, 12, num_hosts=min(n, 324))
    sol = solve_orp(
        min(n, 324), 12, schedule=AnnealingSchedule(num_steps=3_000), seed=9
    )

    rows = [
        describe("torus / index", torus_graph, Floorplan(torus_graph)),
        describe("torus / dfs", torus_graph, Floorplan(torus_graph, ordering="dfs")),
        describe("proposed / index", sol.graph, Floorplan(sol.graph)),
        describe("proposed / dfs", sol.graph, Floorplan(sol.graph, ordering="dfs")),
    ]
    print(format_table(
        ["network / placement", "cabinets", "cable m", "optical",
         "power W", "switch $", "cable $", "total $"],
        rows,
        title=f"Datacenter floorplan study ({spec} vs proposed, n={torus_graph.num_hosts})",
    ))
    print(
        "\nDFS cabinet placement shortens cable runs for irregular"
        "\ntopologies; the proposed network spends less on switches"
        "\n(fewer of them) and somewhat more on cables — the paper's"
        "\nFig. 9d breakdown."
    )


if __name__ == "__main__":
    main()
