#!/usr/bin/env python3
"""Quickstart: solve an Order/Radix Problem instance end to end.

Given an order (number of hosts) and a radix (ports per switch), this
script predicts the optimal switch count from the continuous Moore bound,
runs the 2-neighbor-swing simulated annealing of the paper, and reports
the result against the Theorem-1/2 lower bounds.  The solved topology is
saved in the library's text format for reuse.

Usage:
    python examples/quickstart.py [n] [r]          # defaults: 128 12
"""

from __future__ import annotations

import sys

from repro import (
    AnnealingSchedule,
    continuous_moore_bound,
    load_graph,
    optimal_switch_count,
    save_graph,
    solve_orp,
)
from repro.analysis import host_distribution


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    r = int(sys.argv[2]) if len(sys.argv) > 2 else 12

    print(f"Order/Radix Problem: n={n} hosts, r={r} ports per switch\n")

    m_opt, bound = optimal_switch_count(n, r)
    print(f"Continuous Moore bound predicts m_opt = {m_opt} switches")
    print(f"  (bound at m_opt: {bound:.4f}; at m_opt/2: "
          f"{continuous_moore_bound(n, max(1, m_opt // 2), r):.4f}; at 2*m_opt: "
          f"{continuous_moore_bound(n, 2 * m_opt, r):.4f})\n")

    solution = solve_orp(
        n, r, schedule=AnnealingSchedule(num_steps=5_000), restarts=2, seed=42
    )
    print(solution.summary())

    print("\nHosts-per-switch distribution (note: generally non-regular):")
    for hosts, count in sorted(host_distribution(solution.graph).items()):
        print(f"  {hosts:3d} hosts -> {count:3d} switches")

    path = f"orp_n{n}_r{r}.hsg"
    save_graph(solution.graph, path)
    reloaded = load_graph(path)
    assert reloaded == solution.graph
    print(f"\nSaved the solved topology to ./{path} (round-trip verified).")


if __name__ == "__main__":
    main()
