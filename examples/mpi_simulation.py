#!/usr/bin/env python3
"""Simulate MPI applications on competing interconnect topologies.

Runs NAS Parallel Benchmark skeletons through the flow-level (SimGrid-
style) network simulator on a torus and on the paper's proposed ORP
topology, then reports per-benchmark Mop/s — a miniature of the paper's
Fig. 9a experiment.  Also demonstrates writing a custom MPI program
against the simulator's rank API.

Usage:
    python examples/mpi_simulation.py [ranks]      # default: 64 (power of 4)
"""

from __future__ import annotations

import sys

from repro import AnnealingSchedule, solve_orp
from repro.analysis.report import format_table
from repro.simulation.apps import run_nas
from repro.simulation.mapping import rank_to_host_mapping
from repro.simulation.mpi import run_mpi_program
from repro.topologies import torus


def custom_stencil(mpi):
    """A hand-written rank program: 1-D halo exchange + allreduce."""
    left = (mpi.rank - 1) % mpi.size
    right = (mpi.rank + 1) % mpi.size
    for _ in range(10):
        yield from mpi.compute(5e7)  # 0.5 ms at 100 GFlops
        mpi.send(right, 8192, tag=1)
        mpi.send(left, 8192, tag=2)
        yield from mpi.recv(src=left, tag=1)
        yield from mpi.recv(src=right, tag=2)
    yield from mpi.allreduce(8)


def main() -> None:
    ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    torus_graph, spec = torus(3, 3, 10, num_hosts=max(ranks, 64))
    solution = solve_orp(
        max(ranks, 64), 10, schedule=AnnealingSchedule(num_steps=3_000), seed=3
    )
    print(f"Conventional: {spec}")
    print(f"Proposed:     m={solution.m}, h-ASPL={solution.h_aspl:.3f} "
          f"(torus h-ASPL is higher)\n")

    rows = []
    for bench in ("is", "mg", "cg", "lu"):
        conv = run_nas(
            bench, torus_graph, ranks, nas_class="A", iterations=1,
            rank_to_host=rank_to_host_mapping(torus_graph, ranks, "linear"),
        )
        prop = run_nas(
            bench, solution.graph, ranks, nas_class="A", iterations=1,
            rank_to_host=rank_to_host_mapping(solution.graph, ranks, "dfs"),
        )
        rows.append([bench.upper(), conv.mops_total, prop.mops_total,
                     prop.mops_total / conv.mops_total])
    print(format_table(
        ["benchmark", "torus Mop/s", "proposed Mop/s", "ratio"],
        rows,
        title=f"NPB skeletons, {ranks} ranks, class A, fluid network model",
    ))

    stats = run_mpi_program(solution.graph, ranks, custom_stencil)
    print(
        f"\nCustom stencil program on the proposed topology: "
        f"{stats.time_s * 1e3:.3f} ms simulated, "
        f"{stats.messages} messages, {stats.bytes / 1e6:.1f} MB moved."
    )


if __name__ == "__main__":
    main()
